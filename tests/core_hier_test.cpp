// Hierarchical masters (DESIGN.md §4j): flat-vs-hier verdict parity and
// root-message reduction, in-site relay and inter-site digest behaviour,
// split brokering between starving and loaded sites, sub-master failure
// (bounce, re-home, certification), the wan_grid per-pair-link testbed,
// elastic arrival scenarios, and per-topology trace determinism.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/campaign.hpp"
#include "core/scenarios.hpp"
#include "core/testbeds.hpp"
#include "gen/pigeonhole.hpp"
#include "gen/random_ksat.hpp"
#include "gen/xor_chains.hpp"
#include "solver/proof.hpp"

namespace gridsat::core {
namespace {

using cnf::CnfFormula;

constexpr std::size_t kMiB = 1024 * 1024;

/// 12 hosts over 4 sites ("grid0".."grid3"), master at grid0.
std::vector<sim::HostSpec> four_site_testbed() {
  return testbeds::synthetic_grid(12, 4, 2003);
}

GridSatConfig hier_config(std::size_t sub_masters) {
  GridSatConfig config;
  config.split_timeout_s = 2.0;
  config.overall_timeout_s = 50000.0;
  config.client_quantum_s = 0.5;
  config.min_client_memory = 1 * kMiB;
  config.sub_masters = sub_masters;
  return config;
}

/// Serialize the bus debug trace for byte-identity comparison.
std::string render_trace(const std::vector<sim::MessageRecord>& trace) {
  std::ostringstream out;
  out.precision(17);
  for (const sim::MessageRecord& r : trace) {
    out << r.sent_at << ' ' << r.delivered_at << ' ' << r.from << ' '
        << r.from_site << ' ' << r.to << ' ' << r.to_site << ' ' << r.kind
        << ' ' << r.bytes << '\n';
  }
  return out.str();
}

TEST(HierTest, MatchesFlatVerdictWithFewerRootMessages) {
  const CnfFormula f = gen::pigeonhole_unsat(8);
  // The root-message win is an O(clients)-vs-O(sites) asymmetry, so the
  // comparison needs enough clients per site for the flat master's
  // per-client report load to dominate the hierarchy's cadence floor.
  const std::vector<sim::HostSpec> hosts = testbeds::synthetic_grid(64, 4);

  Campaign flat(f, "grid0", hosts, hier_config(0));
  const GridSatResult flat_result = flat.run();
  ASSERT_EQ(flat_result.status, CampaignStatus::kUnsat);
  EXPECT_EQ(flat.num_sub_masters(), 0u);
  EXPECT_EQ(flat_result.sub_messages_handled, 0u);
  EXPECT_GT(flat_result.root_messages_handled, 0u);

  Campaign hier(f, "grid0", hosts, hier_config(4));
  const GridSatResult hier_result = hier.run();
  ASSERT_EQ(hier_result.status, CampaignStatus::kUnsat);
  EXPECT_EQ(hier.num_sub_masters(), 4u);

  // The point of the topology: client reports terminate at sub-masters,
  // so the root sees a fraction of the flat message load.
  EXPECT_LT(hier_result.root_messages_handled,
            flat_result.root_messages_handled / 2);
  EXPECT_GT(hier_result.sub_messages_handled, 0u);
  // Clause traffic moved onto the in-site relay.
  EXPECT_GT(hier_result.site_relay_batches, 0u);
}

TEST(HierTest, RacingModesKeepTheFlatMaster) {
  GridSatConfig config = hier_config(4);
  config.parallel_mode = solver::ParallelMode::kPortfolio;
  const CnfFormula f = gen::random_ksat_planted(50, 210, 3, 7);
  Campaign campaign(f, "grid0", four_site_testbed(), config);
  EXPECT_EQ(campaign.num_sub_masters(), 0u);
  const GridSatResult result = campaign.run();
  EXPECT_EQ(result.status, CampaignStatus::kSat);
  EXPECT_EQ(result.sub_messages_handled, 0u);
}

TEST(HierTest, LbdCapZeroDisablesInterSiteDigestOnly) {
  GridSatConfig config = hier_config(4);
  config.inter_site_lbd_cap = 0;
  const CnfFormula f = gen::pigeonhole_unsat(8);
  Campaign campaign(f, "grid0", four_site_testbed(), config);
  const GridSatResult result = campaign.run();
  ASSERT_EQ(result.status, CampaignStatus::kUnsat);
  EXPECT_EQ(result.inter_site_digests, 0u);
  EXPECT_EQ(result.digest_clauses_sent, 0u);
  // In-site relay is unaffected by the cap.
  EXPECT_GT(result.site_relay_batches, 0u);
}

TEST(HierTest, RootBrokersSplitsTowardStarvingSite) {
  // One lone host gets the problem; the other site is all idle capacity.
  // Its sub-master must detect starvation and the root must broker a
  // split from the loaded site across.
  std::vector<sim::HostSpec> hosts;
  for (int i = 0; i < 4; ++i) {
    sim::HostSpec spec;
    spec.name = "h" + std::to_string(i);
    spec.site = i == 0 ? "solo" : "farm";
    spec.speed = 3000.0;
    spec.memory_bytes = 32 * kMiB;
    spec.seed = 300 + i;
    hosts.push_back(spec);
  }
  GridSatConfig config = hier_config(2);
  const CnfFormula f = gen::pigeonhole_unsat(8);
  Campaign campaign(f, "solo", hosts, config);
  const GridSatResult result = campaign.run();
  ASSERT_EQ(result.status, CampaignStatus::kUnsat);
  EXPECT_GT(result.brokered_splits, 0u);
  EXPECT_GT(result.total_splits, 0u);
}

TEST(HierTest, SubMasterDeathBouncesRehomesAndStillCertifies) {
  if (!solver::kProofCompiledIn) GTEST_SKIP() << "GRIDSAT_PROOF is off";
  GridSatConfig config = hier_config(4);
  config.solver.log_proof = true;
  const CnfFormula f = gen::pigeonhole_unsat(8);
  Campaign campaign(f, "grid0", four_site_testbed(), config);
  // Kill the master site's sub-master while splits and clause relays are
  // in flight; kill a second one later in the endgame.
  campaign.schedule_sub_master_failure("grid0", 8.0);
  campaign.schedule_sub_master_failure("grid1", 20.0);
  const GridSatResult result = campaign.run();
  ASSERT_EQ(result.status, CampaignStatus::kUnsat);
  EXPECT_GE(result.sub_master_rehomes, 1u);
  // No proof leaf may be lost to the failure: the stitched refutation
  // must still certify against the original formula.
  ASSERT_TRUE(result.proof_stitched) << result.proof_error;
  const solver::ProofCheckResult check = campaign.certify();
  EXPECT_TRUE(check.valid) << check.message;
}

TEST(HierTest, SameSeedTracesAreByteIdenticalPerTopology) {
  const CnfFormula f = gen::urquhart_like(8, 11);
  for (const std::size_t subs : {std::size_t{0}, std::size_t{4}}) {
    std::string first;
    for (int run = 0; run < 2; ++run) {
      Campaign campaign(f, "grid0", four_site_testbed(), hier_config(subs));
      campaign.bus().enable_trace();
      const GridSatResult result = campaign.run();
      ASSERT_NE(result.status, CampaignStatus::kError);
      const std::string rendered = render_trace(campaign.bus().trace());
      ASSERT_FALSE(rendered.empty());
      if (run == 0) {
        first = rendered;
      } else {
        EXPECT_EQ(first, rendered) << "topology sub_masters=" << subs
                                   << " is not trace-deterministic";
      }
    }
  }
}

TEST(WanGridTest, PerPairLinksApplyIncludingAsymmetricPair) {
  const testbeds::WanGrid grid = testbeds::wan_grid(3, 2003);
  EXPECT_EQ(grid.hosts.size(), 12u);
  EXPECT_GE(grid.links.size(), 4u);

  const CnfFormula f = gen::pigeonhole_unsat(7);
  GridSatConfig config = hier_config(4);
  Campaign campaign(f, "wan-east", grid.hosts, config);
  testbeds::apply_wan_links(grid, campaign.network());

  // Overrides took: the backbone is faster than the default, and the
  // eu-apac pair trombones above the sum of its east-hop legs.
  const sim::LinkSpec backbone =
      campaign.network().link_between("wan-east", "wan-west");
  EXPECT_DOUBLE_EQ(backbone.latency_s, 0.015);
  const sim::LinkSpec trombone =
      campaign.network().link_between("wan-eu", "wan-apac");
  const sim::LinkSpec leg_a =
      campaign.network().link_between("wan-eu", "wan-east");
  const sim::LinkSpec leg_b =
      campaign.network().link_between("wan-east", "wan-apac");
  EXPECT_GT(trombone.latency_s, leg_a.latency_s + leg_b.latency_s);
  // Unlisted pairs fall back to the inter-site default.
  EXPECT_DOUBLE_EQ(leg_b.latency_s, 0.030);

  const GridSatResult result = campaign.run();
  EXPECT_EQ(result.status, CampaignStatus::kUnsat);
  EXPECT_GT(result.inter_site_bytes, 0u);
}

TEST(ScenarioTest, DiurnalAndFlashCrowdAreDeterministic) {
  const CnfFormula f = gen::pigeonhole_unsat(9);  // outlives the window
  const testbeds::WanGrid grid = testbeds::wan_grid(2, 2003);
  std::vector<sim::HostSpec> extra = testbeds::synthetic_grid(6, 2, 77);

  GridSatResult results[2];
  std::string traces[2];
  for (int run = 0; run < 2; ++run) {
    GridSatConfig config = hier_config(4);
    config.overall_timeout_s = 60.0;
    Campaign campaign(f, "wan-east", grid.hosts, config);
    testbeds::apply_wan_links(grid, campaign.network());
    campaign.bus().enable_trace();

    scenarios::DiurnalSpec diurnal;
    diurnal.first_dusk_s = 4.0;
    diurnal.night_s = 15.0;
    diurnal.day_s = 8.0;
    diurnal.cycles = 2;
    const std::size_t night_joins = scenarios::schedule_diurnal(
        campaign, {extra.begin(), extra.begin() + 3}, diurnal, 5);
    EXPECT_EQ(night_joins, 6u);

    scenarios::FlashCrowdSpec crowd;
    crowd.at_s = 10.0;
    crowd.dwell_mean_s = 20.0;
    crowd.dwell_jitter_s = 5.0;
    const std::size_t crowd_joins = scenarios::schedule_flash_crowd(
        campaign, {extra.begin() + 3, extra.end()}, crowd, 6);
    EXPECT_EQ(crowd_joins, 3u);

    results[run] = campaign.run();
    traces[run] = render_trace(campaign.bus().trace());
  }
  EXPECT_EQ(results[0].status, results[1].status);
  EXPECT_EQ(results[0].hosts_joined, results[1].hosts_joined);
  EXPECT_EQ(results[0].hosts_released, results[1].hosts_released);
  EXPECT_EQ(results[0].messages, results[1].messages);
  EXPECT_EQ(results[0].bytes_transferred, results[1].bytes_transferred);
  EXPECT_EQ(results[0].total_splits, results[1].total_splits);
  EXPECT_DOUBLE_EQ(results[0].seconds, results[1].seconds);
  EXPECT_EQ(traces[0], traces[1]);
  // The elastic machinery actually ran.
  EXPECT_GT(results[0].hosts_joined, 0u);
  EXPECT_GT(results[0].hosts_released, 0u);
}

}  // namespace
}  // namespace gridsat::core
