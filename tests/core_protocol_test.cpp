// Wire-protocol codec tests: every message type round-trips, malformed
// frames are rejected (never crash), and the big payloads (subproblems,
// clause batches, checkpoints) survive encode/decode intact.
#include <gtest/gtest.h>

#include "core/protocol.hpp"
#include "gen/pigeonhole.hpp"
#include "solver/cdcl.hpp"
#include "solver/sharing.hpp"
#include "util/rng.hpp"

namespace gridsat::core::protocol {
namespace {

using cnf::Lit;

template <typename T>
T roundtrip(const Message& message) {
  const auto bytes = encode(message);
  const auto back = decode(bytes);
  EXPECT_TRUE(back.has_value());
  EXPECT_EQ(type_of(*back), type_of(message));
  return std::get<T>(*back);
}

TEST(ProtocolTest, ControlMessagesRoundTrip) {
  EXPECT_EQ(roundtrip<Register>(Register{7}).host_index, 7u);
  EXPECT_EQ(roundtrip<SubproblemAck>(SubproblemAck{3}).host_index, 3u);
  EXPECT_EQ(roundtrip<SplitGrant>(SplitGrant{12}).peer_host, 12u);
  EXPECT_EQ(roundtrip<MigrateOrder>(MigrateOrder{5}).peer_host, 5u);
  EXPECT_EQ(roundtrip<SubproblemUnsat>(SubproblemUnsat{9}).host_index, 9u);
  (void)roundtrip<Launch>(Launch{});

  SplitRequest req;
  req.host_index = 4;
  req.reason = SplitRequest::Reason::kMemory;
  const auto back = roundtrip<SplitRequest>(req);
  EXPECT_EQ(back.host_index, 4u);
  EXPECT_EQ(back.reason, SplitRequest::Reason::kMemory);

  SplitDone done;
  done.from_host = 1;
  done.to_host = 2;
  const auto done_back = roundtrip<SplitDone>(done);
  EXPECT_EQ(done_back.from_host, 1u);
  EXPECT_EQ(done_back.to_host, 2u);

  SplitFailed failed;
  failed.requester = 6;
  failed.peer = 8;
  const auto failed_back = roundtrip<SplitFailed>(failed);
  EXPECT_EQ(failed_back.requester, 6u);
  EXPECT_EQ(failed_back.peer, 8u);

  Migrated migrated;
  migrated.from_host = 2;
  migrated.to_host = 0;
  EXPECT_EQ(roundtrip<Migrated>(migrated).to_host, 0u);
}

TEST(ProtocolTest, SubproblemPayloadRoundTrips) {
  // A real subproblem from a real split.
  const auto f = gen::pigeonhole_unsat(6);
  solver::CdclSolver solver(f);
  while (!solver.can_split() &&
         solver.solve(200) == solver::SolveStatus::kUnknown) {
  }
  ASSERT_TRUE(solver.can_split());
  SubproblemMsg msg{solver.split()};
  const auto back = roundtrip<SubproblemMsg>(msg);
  // The codec reorders clauses into canonical wire order (length runs,
  // sorted literals), so compare canonical serializations rather than
  // in-memory layout; decoding canonical bytes is the identity.
  EXPECT_EQ(back.subproblem.to_bytes(), msg.subproblem.to_bytes());
  EXPECT_EQ(back.subproblem.units, msg.subproblem.units);
  EXPECT_EQ(back.subproblem.assumptions, msg.subproblem.assumptions);
  EXPECT_EQ(back.subproblem.num_problem_clauses,
            msg.subproblem.num_problem_clauses);
  const auto again = roundtrip<SubproblemMsg>(back);
  EXPECT_EQ(again.subproblem, back.subproblem);

  SubproblemReject reject;
  reject.host_index = 11;
  reject.subproblem = msg.subproblem;
  const auto reject_back = roundtrip<SubproblemReject>(reject);
  EXPECT_EQ(reject_back.host_index, 11u);
  EXPECT_EQ(reject_back.subproblem.to_bytes(), msg.subproblem.to_bytes());
}

TEST(ProtocolTest, SubproblemBaseRefRoundTrips) {
  const auto f = gen::pigeonhole_unsat(6);
  solver::CdclSolver solver(f);
  while (!solver.can_split() &&
         solver.solve(200) == solver::SolveStatus::kUnknown) {
  }
  ASSERT_TRUE(solver.can_split());
  SubproblemMsg msg{solver.split(), solver::WireMode::kBaseRef};
  msg.subproblem.base_fingerprint = solver::formula_fingerprint(f);

  const auto back = roundtrip<SubproblemMsg>(msg);
  EXPECT_EQ(back.mode, solver::WireMode::kBaseRef);
  EXPECT_TRUE(back.subproblem.needs_base);
  EXPECT_EQ(back.subproblem.num_problem_clauses, 0u);
  EXPECT_EQ(back.subproblem.base_fingerprint, msg.subproblem.base_fingerprint);
  EXPECT_EQ(back.subproblem.units, msg.subproblem.units);
  EXPECT_EQ(back.subproblem.assumptions, msg.subproblem.assumptions);

  // The base-ref form must be strictly smaller than the full ship.
  EXPECT_LT(msg.subproblem.wire_size(solver::WireMode::kBaseRef),
            msg.subproblem.wire_size(solver::WireMode::kFull));

  // Rehydrating from the cached base restores the full problem block.
  SubproblemMsg hydrated = back;
  hydrated.subproblem.rehydrate(f.clauses());
  EXPECT_FALSE(hydrated.subproblem.needs_base);
  EXPECT_EQ(hydrated.subproblem.num_problem_clauses, f.num_clauses());
}

TEST(ProtocolTest, ClauseBatchRoundTrips) {
  ClauseBatch batch;
  batch.clauses = {{Lit(1, false), Lit(2, true)},
                   {Lit(3, false)},
                   {Lit(4, true), Lit(5, false), Lit(6, true)}};
  const auto back = roundtrip<ClauseBatch>(batch);
  // Canonical wire order: ascending clause length (stable), sorted codes.
  const std::vector<cnf::Clause> expect = {
      {Lit(3, false)},
      {Lit(1, false), Lit(2, true)},
      {Lit(4, true), Lit(5, false), Lit(6, true)}};
  EXPECT_EQ(back.clauses, expect);
}

TEST(ProtocolTest, SatFoundCarriesModel) {
  SatFound msg;
  msg.host_index = 2;
  msg.model = {cnf::LBool::kUndef, cnf::LBool::kTrue, cnf::LBool::kFalse};
  const auto back = roundtrip<SatFound>(msg);
  EXPECT_EQ(back.host_index, 2u);
  EXPECT_TRUE(back.model == msg.model);
}

TEST(ProtocolTest, CheckpointRoundTrips) {
  CheckpointMsg msg;
  msg.host_index = 13;
  msg.checkpoint.heavy = true;
  msg.checkpoint.units = {{Lit(1, false), false}, {Lit(4, true), true}};
  msg.checkpoint.learned = {{Lit(2, false), Lit(3, true)}};
  const auto back = roundtrip<CheckpointMsg>(msg);
  EXPECT_EQ(back.host_index, 13u);
  EXPECT_EQ(back.checkpoint, msg.checkpoint);
}

TEST(ProtocolTest, TypeNames) {
  EXPECT_STREQ(to_string(MessageType::kSplitRequest), "SPLIT_REQUEST");
  EXPECT_STREQ(to_string(MessageType::kSubproblem), "SUBPROBLEM");
  EXPECT_STREQ(to_string(MessageType::kCheckpoint), "CHECKPOINT");
}

TEST(ProtocolTest, MalformedFramesRejected) {
  EXPECT_FALSE(decode({}).has_value());
  EXPECT_FALSE(decode({0}).has_value());      // type 0 invalid
  EXPECT_FALSE(decode({99, 0, 0, 0, 0}).has_value());  // unknown type
  // Valid frame, then truncate / extend.
  const auto good = encode(Message{Register{5}});
  auto truncated = good;
  truncated.pop_back();
  EXPECT_FALSE(decode(truncated).has_value());
  auto extended = good;
  extended.push_back(0xaa);
  EXPECT_FALSE(decode(extended).has_value());
}

TEST(ProtocolTest, FuzzNeverCrashes) {
  util::Xoshiro256 rng(99);
  for (int i = 0; i < 300; ++i) {
    std::vector<std::uint8_t> junk(rng.below(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.below(256));
    (void)decode(junk);  // must not throw or crash
  }
  // Bit-flip mutations of a valid large frame.
  const auto f = gen::pigeonhole_unsat(4);
  SubproblemMsg msg;
  msg.subproblem.num_vars = f.num_vars();
  msg.subproblem.clauses = f.clauses();
  msg.subproblem.num_problem_clauses = f.num_clauses();
  auto frame = encode(Message{msg});
  for (int i = 0; i < 300; ++i) {
    auto mutated = frame;
    mutated[rng.below(mutated.size())] ^=
        static_cast<std::uint8_t>(1u << rng.below(8));
    (void)decode(mutated);
  }
}

}  // namespace
}  // namespace gridsat::core::protocol
