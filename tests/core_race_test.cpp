// Campaign-level portfolio/hybrid racing: verdict agreement with the
// split-mode campaign and the sequential solver, loser cancellation via
// CANCEL_SUBPROBLEM/CANCELLED, racer-death tolerance (co-racers keep the
// space covered), run-to-run determinism, and certification of stitched
// refutations whose leaves include race duplicates.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/sequential.hpp"
#include "core/testbeds.hpp"
#include "gen/pigeonhole.hpp"
#include "gen/random_ksat.hpp"
#include "gen/xor_chains.hpp"
#include "solver/diversify.hpp"

namespace gridsat::core {
namespace {

using cnf::CnfFormula;
using solver::ParallelMode;

constexpr std::size_t kMiB = 1024 * 1024;

/// Deterministic testbed with a configurable host count (two sites).
std::vector<sim::HostSpec> testbed(std::size_t n) {
  std::vector<sim::HostSpec> hosts;
  for (std::size_t i = 0; i < n; ++i) {
    sim::HostSpec spec;
    spec.name = "h" + std::to_string(i);
    spec.site = i % 2 == 0 ? "east" : "west";
    spec.speed = 3000.0 + 500.0 * static_cast<double>(i);
    spec.memory_bytes = 32 * kMiB;
    spec.seed = 100 + i;
    hosts.push_back(spec);
  }
  return hosts;
}

GridSatConfig race_config(ParallelMode mode, std::size_t race_width = 2) {
  GridSatConfig config;
  config.parallel_mode = mode;
  config.race_width = race_width;
  config.split_timeout_s = 2.0;
  config.overall_timeout_s = 50000.0;
  config.client_quantum_s = 0.5;
  config.min_client_memory = 1 * kMiB;
  config.solver.log_proof = true;
  return config;
}

#define REQUIRE_PROOF_HOOKS() \
  if (!solver::kProofCompiledIn) GTEST_SKIP() << "GRIDSAT_PROOF is off"

// --- Verdict agreement --------------------------------------------------

class RaceModeAgreement
    : public testing::TestWithParam<std::tuple<ParallelMode, int>> {};

TEST_P(RaceModeAgreement, MatchesSequentialVerdict) {
  const auto [mode, seed] = GetParam();
  const CnfFormula f = gen::random_ksat(
      40, static_cast<std::size_t>(40 * 4.26), 3,
      static_cast<std::uint64_t>(seed) * 709 + 17);
  SequentialOptions seq_options;
  seq_options.host = testbeds::fastest_dedicated();
  seq_options.timeout_s = 1e9;
  const SequentialResult seq = run_sequential(f, seq_options);
  ASSERT_NE(seq.status, solver::SolveStatus::kUnknown);

  Campaign campaign(f, "east", testbed(4), race_config(mode));
  const GridSatResult result = campaign.run();
  if (seq.status == solver::SolveStatus::kSat) {
    ASSERT_EQ(result.status, CampaignStatus::kSat)
        << to_string(mode) << " seed " << seed;
    EXPECT_TRUE(is_model(f, result.model));
  } else {
    EXPECT_EQ(result.status, CampaignStatus::kUnsat)
        << to_string(mode) << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RaceModeAgreement,
    testing::Combine(testing::Values(ParallelMode::kPortfolio,
                                     ParallelMode::kHybrid),
                     testing::Range(0, 6)));

// --- Portfolio ----------------------------------------------------------

TEST(PortfolioCampaignTest, RefutesWithoutSplitting) {
  const CnfFormula f = gen::pigeonhole_unsat(7);
  Campaign campaign(f, "east", testbed(4),
                    race_config(ParallelMode::kPortfolio));
  const GridSatResult result = campaign.run();
  ASSERT_EQ(result.status, CampaignStatus::kUnsat);
  // Racers cover the whole formula; the guiding-path machinery stays off.
  EXPECT_EQ(result.total_splits, 0u);
  EXPECT_EQ(result.migrations, 0u);
}

TEST(PortfolioCampaignTest, UnsatRefutationCertifies) {
  REQUIRE_PROOF_HOOKS();
  const CnfFormula f = gen::pigeonhole_unsat(7);
  Campaign campaign(f, "east", testbed(4),
                    race_config(ParallelMode::kPortfolio));
  const GridSatResult result = campaign.run();
  ASSERT_EQ(result.status, CampaignStatus::kUnsat);
  ASSERT_TRUE(result.proof != nullptr);
  ASSERT_TRUE(result.proof_stitched) << result.proof_error;
  const solver::ProofCheckResult check = campaign.certify();
  EXPECT_TRUE(check.valid) << check.message << " at step "
                           << check.failed_step;
}

TEST(PortfolioCampaignTest, SurvivesRacerDeath) {
  // A dead portfolio racer leaves the formula covered by its peers: the
  // campaign must finish with a verdict, not kError, and without
  // checkpoint recovery configured.
  const CnfFormula f = gen::pigeonhole_unsat(8);
  Campaign campaign(f, "east", testbed(4),
                    race_config(ParallelMode::kPortfolio));
  campaign.schedule_client_failure(2, 15.0);
  const GridSatResult result = campaign.run();
  EXPECT_EQ(result.status, CampaignStatus::kUnsat);
  EXPECT_GE(result.client_deaths, 1u);
}

// --- Hybrid -------------------------------------------------------------

TEST(HybridCampaignTest, SplitsAndCancelsLosers) {
  const CnfFormula f = gen::pigeonhole_unsat(8);
  Campaign campaign(f, "east", testbed(6), race_config(ParallelMode::kHybrid));
  const GridSatResult result = campaign.run();
  ASSERT_EQ(result.status, CampaignStatus::kUnsat);
  EXPECT_GT(result.total_splits, 0u);
  // At least one cohort's race was decided before both members finished.
  EXPECT_GT(result.races_cancelled, 0u);
}

TEST(HybridCampaignTest, UnsatRefutationWithRaceDuplicatesCertifies) {
  REQUIRE_PROOF_HOOKS();
  const CnfFormula f = gen::pigeonhole_unsat(8);
  Campaign campaign(f, "east", testbed(6), race_config(ParallelMode::kHybrid));
  const GridSatResult result = campaign.run();
  ASSERT_EQ(result.status, CampaignStatus::kUnsat);
  ASSERT_TRUE(result.proof != nullptr);
  ASSERT_TRUE(result.proof_stitched) << result.proof_error;
  const solver::ProofCheckResult check = campaign.certify();
  EXPECT_TRUE(check.valid) << check.message << " at step "
                           << check.failed_step;
  EXPECT_GT(check.steps_checked, 0u);
}

TEST(HybridCampaignTest, SurvivesRacerDeathWhenCohortCovers) {
  const CnfFormula f = gen::pigeonhole_unsat(8);
  GridSatConfig config = race_config(ParallelMode::kHybrid);
  Campaign campaign(f, "east", testbed(6), config);
  campaign.schedule_client_failure(5, 20.0);
  const GridSatResult result = campaign.run();
  // Either the dead host was racing (co-racer covers the child: verdict)
  // or it held unshared space (kError without recovery). Both are legal;
  // what must never happen is a wrong verdict.
  EXPECT_TRUE(result.status == CampaignStatus::kUnsat ||
              result.status == CampaignStatus::kError)
      << to_string(result.status);
}

TEST(HybridCampaignTest, CertifiesAcrossRacerDeath) {
  REQUIRE_PROOF_HOOKS();
  const CnfFormula f = gen::pigeonhole_unsat(8);
  GridSatConfig config = race_config(ParallelMode::kHybrid);
  config.checkpoint = CheckpointMode::kHeavy;
  config.checkpoint_interval_s = 1.0;
  config.recover_from_checkpoints = true;
  Campaign campaign(f, "east", testbed(6), config);
  campaign.schedule_client_failure(5, 20.0);
  const GridSatResult result = campaign.run();
  ASSERT_EQ(result.status, CampaignStatus::kUnsat);
  const solver::ProofCheckResult check = campaign.certify();
  EXPECT_TRUE(check.valid) << check.message << " at step "
                           << check.failed_step;
}

// --- Determinism --------------------------------------------------------

class RaceDeterminism
    : public testing::TestWithParam<std::tuple<ParallelMode, std::size_t>> {};

TEST_P(RaceDeterminism, RepeatedRunsAreIdentical) {
  const auto [mode, width] = GetParam();
  const CnfFormula f = gen::urquhart_like(9, 4);
  const auto run_once = [&] {
    Campaign campaign(f, "east", testbed(4), race_config(mode, width));
    return campaign.run();
  };
  const GridSatResult a = run_once();
  const GridSatResult b = run_once();
  ASSERT_EQ(a.status, b.status);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.total_splits, b.total_splits);
  EXPECT_EQ(a.races_cancelled, b.races_cancelled);
  if (solver::kProofCompiledIn && a.status == CampaignStatus::kUnsat) {
    // Same winner, same arrival order, same stitched proof.
    ASSERT_TRUE(a.proof != nullptr);
    ASSERT_TRUE(b.proof != nullptr);
    EXPECT_TRUE(a.proof->steps() == b.proof->steps());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Widths, RaceDeterminism,
    testing::Combine(testing::Values(ParallelMode::kPortfolio,
                                     ParallelMode::kHybrid),
                     testing::Values(std::size_t{1}, std::size_t{2},
                                     std::size_t{4})));

// Split mode must be byte-for-byte unaffected by the racing machinery:
// same timing, same message count as always (guards against accidental
// behavior changes from the multicast refactor).
TEST(RaceDeterminism2, SplitModeUnchangedByRaceKnobs) {
  const CnfFormula f = gen::pigeonhole_unsat(8);
  GridSatConfig split = race_config(ParallelMode::kSplit);
  GridSatConfig split_wide = race_config(ParallelMode::kSplit, 4);
  Campaign a(f, "east", testbed(4), split);
  Campaign b(f, "east", testbed(4), split_wide);
  const GridSatResult ra = a.run();
  const GridSatResult rb = b.run();
  ASSERT_EQ(ra.status, rb.status);
  EXPECT_DOUBLE_EQ(ra.seconds, rb.seconds);
  EXPECT_EQ(ra.messages, rb.messages);
  EXPECT_EQ(ra.races_cancelled, 0u);
  EXPECT_EQ(rb.races_cancelled, 0u);
}

}  // namespace
}  // namespace gridsat::core
