// JSON writer and result-report tests: structural correctness, escaping,
// and stable field presence.
#include <gtest/gtest.h>

#include "core/report.hpp"
#include "util/json.hpp"

namespace gridsat {
namespace {

TEST(JsonWriterTest, ObjectsArraysAndScalars) {
  util::JsonWriter json;
  json.begin_object()
      .field("name", "x")
      .field("count", 3)
      .field("ratio", 0.5)
      .field("flag", true)
      .key("list")
      .begin_array()
      .value(1)
      .value(2)
      .end_array()
      .key("nothing")
      .null()
      .end_object();
  EXPECT_TRUE(json.complete());
  EXPECT_EQ(json.str(),
            R"({"name":"x","count":3,"ratio":0.5,"flag":true,)"
            R"("list":[1,2],"nothing":null})");
}

TEST(JsonWriterTest, StringEscaping) {
  util::JsonWriter json;
  json.begin_object().field("s", "a\"b\\c\nd\te").end_object();
  EXPECT_EQ(json.str(), "{\"s\":\"a\\\"b\\\\c\\nd\\te\"}");
}

TEST(JsonWriterTest, NestedStructures) {
  util::JsonWriter json;
  json.begin_array();
  for (int i = 0; i < 2; ++i) {
    json.begin_object().field("i", i).end_object();
  }
  json.end_array();
  EXPECT_EQ(json.str(), R"([{"i":0},{"i":1}])");
}

TEST(ReportTest, GridSatResultFields) {
  core::GridSatResult result;
  result.status = core::CampaignStatus::kUnsat;
  result.seconds = 123.5;
  result.max_active_clients = 7;
  result.total_splits = 3;
  const std::string json = core::to_json(result);
  EXPECT_NE(json.find("\"status\":\"UNSAT\""), std::string::npos);
  EXPECT_NE(json.find("\"seconds\":123.5"), std::string::npos);
  EXPECT_NE(json.find("\"max_active_clients\":7"), std::string::npos);
  EXPECT_NE(json.find("\"total_splits\":3"), std::string::npos);
}

TEST(ReportTest, SequentialResultFields) {
  core::SequentialResult result;
  result.status = solver::SolveStatus::kMemOut;
  result.seconds = 9.0;
  const std::string json = core::to_json(result);
  EXPECT_NE(json.find("\"status\":\"MEM_OUT\""), std::string::npos);
  EXPECT_NE(json.find("\"cell\":\"MEM_OUT\""), std::string::npos);
}

TEST(ReportTest, RowReportNests) {
  core::RowReport row;
  row.paper_name = "6pipe.cnf";
  row.analog = "random 3-SAT";
  row.paper_status = "UNSAT";
  row.sequential.status = solver::SolveStatus::kUnsat;
  row.gridsat.status = core::CampaignStatus::kUnsat;
  const std::string json = core::to_json(row);
  EXPECT_NE(json.find("\"paper_name\":\"6pipe.cnf\""), std::string::npos);
  EXPECT_NE(json.find("\"sequential\":{"), std::string::npos);
  EXPECT_NE(json.find("\"gridsat\":{"), std::string::npos);
}

}  // namespace
}  // namespace gridsat
