// Scheduler-behaviour tests: migration toward a stronger idle cluster
// (§3.4), backlog dispatch order (longest-running splits first), ranking
// integration with the forecaster, and the master's resource-state
// machine under failures of idle clients.
#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "gen/pigeonhole.hpp"
#include "gen/random_ksat.hpp"

namespace gridsat::core {
namespace {

constexpr std::size_t kMiB = 1024 * 1024;

TEST(SchedulerTest, MigratesFromWeakRemoteHostToStrongCluster) {
  // Host 0: slow, alone at a far site — gets the problem first (it is the
  // first to register). Hosts 1..4: a fast idle cluster. The paper's
  // migration rule should move the whole problem rather than split it.
  std::vector<sim::HostSpec> hosts;
  sim::HostSpec weak;
  weak.name = "weak";
  weak.site = "far";
  weak.speed = 1000.0;
  weak.memory_bytes = 16 * kMiB;
  hosts.push_back(weak);
  for (int i = 0; i < 4; ++i) {
    sim::HostSpec strong;
    strong.name = "strong" + std::to_string(i);
    strong.site = "cluster";
    strong.speed = 9000.0;
    strong.memory_bytes = 32 * kMiB;
    hosts.push_back(strong);
  }
  GridSatConfig config;
  config.split_timeout_s = 5.0;
  config.overall_timeout_s = 100000.0;
  config.min_client_memory = 1 * kMiB;
  config.migration_rank_factor = 2.0;
  config.migration_min_idle_at_site = 3;
  const auto f = gen::pigeonhole_unsat(8);
  Campaign campaign(f, "far", hosts, config);
  const GridSatResult result = campaign.run();
  EXPECT_EQ(result.status, CampaignStatus::kUnsat);
  EXPECT_GE(result.migrations, 1u);
}

TEST(SchedulerTest, NoMigrationBetweenEqualHosts) {
  std::vector<sim::HostSpec> hosts;
  for (int i = 0; i < 4; ++i) {
    sim::HostSpec spec;
    spec.name = "h" + std::to_string(i);
    spec.site = "one";
    spec.speed = 4000.0;
    spec.memory_bytes = 32 * kMiB;
    hosts.push_back(spec);
  }
  GridSatConfig config;
  config.split_timeout_s = 3.0;
  config.overall_timeout_s = 100000.0;
  config.min_client_memory = 1 * kMiB;
  Campaign campaign(gen::pigeonhole_unsat(8), "one", hosts, config);
  const GridSatResult result = campaign.run();
  EXPECT_EQ(result.status, CampaignStatus::kUnsat);
  EXPECT_EQ(result.migrations, 0u);
}

TEST(SchedulerTest, FreeHostIsRelaunchedWhenBacklogNeedsIt) {
  // Kill an idle client early; later, when the busy clients ask for
  // splits and no idle client exists, the master must restart a client
  // on the free host rather than starve the backlog (§3.3: "In case the
  // master needs more resources, it tries to restart clients on free
  // resources").
  std::vector<sim::HostSpec> hosts;
  for (int i = 0; i < 3; ++i) {
    sim::HostSpec spec;
    spec.name = "h" + std::to_string(i);
    spec.site = "one";
    spec.speed = 3000.0;
    spec.memory_bytes = 32 * kMiB;
    hosts.push_back(spec);
  }
  GridSatConfig config;
  config.split_timeout_s = 20.0;
  config.overall_timeout_s = 200000.0;
  config.min_client_memory = 1 * kMiB;
  Campaign campaign(gen::pigeonhole_unsat(8), "one", hosts, config);
  // Host 2 will be idle at t=5 (the problem lives on host 0 and no split
  // is due before t=20).
  campaign.schedule_client_failure(2, 5.0);
  const GridSatResult result = campaign.run();
  EXPECT_EQ(result.status, CampaignStatus::kUnsat);
  // Host 2 was revived and participated: three active clients at peak.
  EXPECT_EQ(result.max_active_clients, 3u);
}

TEST(SchedulerTest, PeakClientCountNeverExceedsPool) {
  std::vector<sim::HostSpec> hosts;
  for (int i = 0; i < 5; ++i) {
    sim::HostSpec spec;
    spec.name = "h" + std::to_string(i);
    spec.site = "one";
    spec.speed = 3000.0;
    spec.memory_bytes = 32 * kMiB;
    hosts.push_back(spec);
  }
  GridSatConfig config;
  config.split_timeout_s = 1.0;  // split storm
  config.overall_timeout_s = 100000.0;
  config.min_client_memory = 1 * kMiB;
  Campaign campaign(gen::pigeonhole_unsat(8), "one", hosts, config);
  const GridSatResult result = campaign.run();
  EXPECT_EQ(result.status, CampaignStatus::kUnsat);
  EXPECT_LE(result.max_active_clients, 5u);
  EXPECT_GE(result.total_splits, 4u);
}

TEST(SchedulerTest, SingleHostDegeneratesToSequential) {
  std::vector<sim::HostSpec> hosts(1);
  hosts[0].name = "solo";
  hosts[0].site = "one";
  hosts[0].speed = 5000.0;
  hosts[0].memory_bytes = 64 * kMiB;
  GridSatConfig config;
  config.split_timeout_s = 5.0;
  config.overall_timeout_s = 1e9;
  config.min_client_memory = 1 * kMiB;
  const auto f = gen::random_ksat(60, 255, 3, 3);
  Campaign campaign(f, "one", hosts, config);
  const GridSatResult result = campaign.run();
  EXPECT_NE(result.status, CampaignStatus::kTimeout);
  EXPECT_EQ(result.total_splits, 0u);  // nobody to split with
  EXPECT_EQ(result.max_active_clients, 1u);
}

TEST(SchedulerTest, NoUsableHostsTimesOut) {
  std::vector<sim::HostSpec> hosts(2);
  hosts[0].name = "tiny0";
  hosts[0].site = "one";
  hosts[0].memory_bytes = 16 * 1024;  // below the floor
  hosts[1] = hosts[0];
  hosts[1].name = "tiny1";
  GridSatConfig config;
  config.overall_timeout_s = 50.0;
  config.min_client_memory = 1 * kMiB;
  Campaign campaign(gen::pigeonhole_unsat(5), "one", hosts, config);
  const GridSatResult result = campaign.run();
  EXPECT_EQ(result.status, CampaignStatus::kTimeout);
  EXPECT_EQ(result.max_active_clients, 0u);
}

}  // namespace
}  // namespace gridsat::core
