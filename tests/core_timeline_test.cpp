// Timeline recorder tests: sampling cadence, the rise-and-collapse shape
// of client utilization (§4.1), and rendering.
#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "core/timeline.hpp"
#include "gen/pigeonhole.hpp"

namespace gridsat::core {
namespace {

constexpr std::size_t kMiB = 1024 * 1024;

std::vector<sim::HostSpec> hosts4() {
  std::vector<sim::HostSpec> hosts;
  for (int i = 0; i < 4; ++i) {
    sim::HostSpec spec;
    spec.name = "h" + std::to_string(i);
    spec.site = "one";
    spec.speed = 3000.0;
    spec.memory_bytes = 32 * kMiB;
    hosts.push_back(spec);
  }
  return hosts;
}

TEST(TimelineTest, RecordsUtilizationRiseAndFall) {
  GridSatConfig config;
  config.split_timeout_s = 3.0;
  config.overall_timeout_s = 100000.0;
  config.min_client_memory = 1 * kMiB;
  Campaign campaign(gen::pigeonhole_unsat(8), "one", hosts4(), config);
  TimelineRecorder recorder(campaign, 5.0);
  recorder.arm();
  const GridSatResult result = campaign.run();
  ASSERT_EQ(result.status, CampaignStatus::kUnsat);

  const auto& samples = recorder.samples();
  ASSERT_GT(samples.size(), 3u);
  // Time strictly increases; counts never exceed the pool.
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (i > 0) EXPECT_GT(samples[i].t, samples[i - 1].t);
    EXPECT_LE(samples[i].busy + samples[i].idle + samples[i].reserved +
                  samples[i].launching + samples[i].free_hosts +
                  samples[i].dead,
              4u);
  }
  // The §4.1 shape: one client first, more later.
  EXPECT_GE(recorder.peak_busy(), 2u);
  EXPECT_LE(samples.front().busy, 1u);
  // Work accumulates monotonically.
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].total_work, samples[i - 1].total_work);
  }
}

TEST(TimelineTest, RenderProducesRows) {
  GridSatConfig config;
  config.split_timeout_s = 3.0;
  config.overall_timeout_s = 100000.0;
  config.min_client_memory = 1 * kMiB;
  Campaign campaign(gen::pigeonhole_unsat(7), "one", hosts4(), config);
  TimelineRecorder recorder(campaign, 5.0);
  recorder.arm();
  (void)campaign.run();
  const std::string chart = recorder.render(8);
  EXPECT_NE(chart.find('#'), std::string::npos);
  EXPECT_NE(chart.find("busy clients"), std::string::npos);
}

TEST(TimelineTest, EmptyBeforeRun) {
  GridSatConfig config;
  Campaign campaign(gen::pigeonhole_unsat(5), "one", hosts4(), config);
  TimelineRecorder recorder(campaign, 5.0);
  EXPECT_TRUE(recorder.samples().empty());
  EXPECT_EQ(recorder.peak_busy(), 0u);
  EXPECT_EQ(recorder.render(), "(no samples)\n");
}

}  // namespace
}  // namespace gridsat::core
