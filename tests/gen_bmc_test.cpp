// Bounded-model-checking substrate tests: the netlist IR, the unroller,
// and the three ready-made models with their known reachability depths.
#include <gtest/gtest.h>

#include "gen/bmc.hpp"
#include "solver/cdcl.hpp"

namespace gridsat::gen {
namespace {

using solver::SolveStatus;

SolveStatus check(const Netlist& net, std::size_t steps) {
  const cnf::CnfFormula f = net.unroll(steps);
  solver::CdclSolver solver(f);
  return solver.solve();
}

TEST(BmcTest, ConstantBadSignalIsImmediatelyReachable) {
  Netlist net;
  net.set_bad(kTrueSignal);
  EXPECT_EQ(check(net, 0), SolveStatus::kSat);
}

TEST(BmcTest, FalseBadSignalIsNeverReachable) {
  Netlist net;
  (void)net.add_input("i");
  net.set_bad(kFalseSignal);
  EXPECT_EQ(check(net, 4), SolveStatus::kUnsat);
}

TEST(BmcTest, InputDrivenBadNeedsOneFrame) {
  Netlist net;
  const Signal i = net.add_input("i");
  net.set_bad(i);
  EXPECT_EQ(check(net, 0), SolveStatus::kSat);  // frame-0 inputs are free
}

TEST(BmcTest, LatchDelaysByOneFrame) {
  // bad = latch whose next-state is a free input: reachable at depth 1,
  // not at depth 0 (the latch resets to 0).
  Netlist net;
  const Signal i = net.add_input("i");
  const Signal l = net.add_latch(false, "l");
  net.connect(l, i);
  net.set_bad(l);
  EXPECT_EQ(check(net, 0), SolveStatus::kUnsat);
  EXPECT_EQ(check(net, 1), SolveStatus::kSat);
}

TEST(BmcTest, GateSemantics) {
  Netlist net;
  const Signal a = net.add_input("a");
  const Signal b = net.add_input("b");
  // bad = a & !b: satisfiable at depth 0.
  net.set_bad(net.add_and(a, !b));
  EXPECT_EQ(check(net, 0), SolveStatus::kSat);
  // bad = a & !a: contradiction, never reachable.
  Netlist net2;
  const Signal c = net2.add_input("c");
  net2.set_bad(net2.add_and(c, !c));
  EXPECT_EQ(check(net2, 3), SolveStatus::kUnsat);
}

TEST(BmcTest, CounterOverflowAtExactDepth) {
  for (const std::size_t bits : {2u, 3u, 4u}) {
    const Netlist net = counter_overflow(bits);
    const std::size_t horizon = (std::size_t{1} << bits) - 1;
    EXPECT_EQ(check(net, horizon - 1), SolveStatus::kUnsat)
        << bits << " bits, too shallow";
    EXPECT_EQ(check(net, horizon), SolveStatus::kSat)
        << bits << " bits, exact depth";
  }
}

TEST(BmcTest, LfsrEquivalenceHolds) {
  const Netlist intact = lfsr_equivalence(6, /*plant_bug=*/false);
  EXPECT_EQ(check(intact, 10), SolveStatus::kUnsat);
}

TEST(BmcTest, LfsrBugIsCaught) {
  const Netlist buggy = lfsr_equivalence(6, /*plant_bug=*/true);
  EXPECT_EQ(check(buggy, 6), SolveStatus::kSat);
}

TEST(BmcTest, TokenRingIsSafe) {
  const Netlist safe = token_ring_arbiter(4, /*plant_bug=*/false);
  EXPECT_EQ(check(safe, 8), SolveStatus::kUnsat);
}

TEST(BmcTest, DoubleTokenViolatesMutualExclusion) {
  const Netlist buggy = token_ring_arbiter(4, /*plant_bug=*/true);
  EXPECT_EQ(check(buggy, 4), SolveStatus::kSat);
}

TEST(BmcTest, UnrollGrowsLinearly) {
  const Netlist net = counter_overflow(3);
  const auto f1 = net.unroll(2);
  const auto f2 = net.unroll(5);
  EXPECT_GT(f2.num_clauses(), f1.num_clauses());
  EXPECT_LT(f2.num_clauses(), 3 * f1.num_clauses());
}

}  // namespace
}  // namespace gridsat::gen
