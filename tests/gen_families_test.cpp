// Tests for the planning (Towers of Hanoi) and quasigroup-completion
// generators: known plan lengths, UNSAT below them, Latin-square
// completability, and model sanity.
#include <gtest/gtest.h>

#include "gen/planning.hpp"
#include "gen/quasigroup.hpp"
#include "solver/cdcl.hpp"

namespace gridsat::gen {
namespace {

using solver::SolveStatus;

SolveStatus solve(const cnf::CnfFormula& f) {
  solver::CdclSolver s(f);
  return s.solve();
}

TEST(HanoiTest, OneDiskNeedsOneMove) {
  EXPECT_EQ(solve(hanoi_sat(1, 1)), SolveStatus::kSat);
}

TEST(HanoiTest, TwoDisksNeedThreeMoves) {
  EXPECT_EQ(solve(hanoi_sat(2, 3)), SolveStatus::kSat);
  EXPECT_EQ(solve(hanoi_sat(2, 2)), SolveStatus::kUnsat);
}

TEST(HanoiTest, ThreeDisksNeedSevenMoves) {
  EXPECT_EQ(solve(hanoi_exact(3)), SolveStatus::kSat);
  EXPECT_EQ(solve(hanoi_too_short(3)), SolveStatus::kUnsat);
}

TEST(HanoiTest, FourDisksNeedFifteenMoves) {
  EXPECT_EQ(solve(hanoi_exact(4)), SolveStatus::kSat);
  EXPECT_EQ(solve(hanoi_too_short(4)), SolveStatus::kUnsat);
}

TEST(HanoiTest, LongerPlansStillWork) {
  // Non-minimal step counts remain satisfiable (the plan may wander).
  EXPECT_EQ(solve(hanoi_sat(2, 4)), SolveStatus::kSat);
  EXPECT_EQ(solve(hanoi_sat(2, 5)), SolveStatus::kSat);
  EXPECT_EQ(solve(hanoi_sat(3, 9)), SolveStatus::kSat);
}

TEST(HanoiTest, ModelDescribesAValidPlan) {
  const cnf::CnfFormula f = hanoi_exact(3);
  solver::CdclSolver s(f);
  ASSERT_EQ(s.solve(), SolveStatus::kSat);
  EXPECT_TRUE(cnf::is_model(f, s.model()));
}

TEST(QuasigroupTest, CompletableAcrossSeedsAndOrders) {
  for (const std::size_t order : {4u, 6u, 8u}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      QuasigroupParams params;
      params.order = order;
      params.seed = seed;
      params.completable = true;
      EXPECT_EQ(solve(quasigroup_completion(params)), SolveStatus::kSat)
          << "order " << order << " seed " << seed;
    }
  }
}

TEST(QuasigroupTest, PlantedConflictIsUnsat) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    QuasigroupParams params;
    params.order = 6;
    params.seed = seed;
    params.completable = false;
    EXPECT_EQ(solve(quasigroup_completion(params)), SolveStatus::kUnsat)
        << "seed " << seed;
  }
}

TEST(QuasigroupTest, EmptySquareIsTriviallyCompletable) {
  QuasigroupParams params;
  params.order = 5;
  params.fill_fraction = 0.0;
  EXPECT_EQ(solve(quasigroup_completion(params)), SolveStatus::kSat);
}

TEST(QuasigroupTest, FullyHintedSquareIsItsOwnModel) {
  QuasigroupParams params;
  params.order = 5;
  params.fill_fraction = 0.99;
  params.completable = true;
  EXPECT_EQ(solve(quasigroup_completion(params)), SolveStatus::kSat);
}

TEST(QuasigroupTest, Deterministic) {
  QuasigroupParams params;
  params.order = 7;
  params.seed = 9;
  EXPECT_TRUE(quasigroup_completion(params) == quasigroup_completion(params));
}

}  // namespace
}  // namespace gridsat::gen
