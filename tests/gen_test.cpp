// Structural tests for the instance generators: sizes, statuses on small
// parameters (via brute force or the CDCL core), determinism, and the
// suite registry's shape.
#include <gtest/gtest.h>

#include <set>

#include "gen/circuit.hpp"
#include "gen/circuit_families.hpp"
#include "gen/graph_color.hpp"
#include "gen/paper_example.hpp"
#include "gen/pigeonhole.hpp"
#include "gen/random_ksat.hpp"
#include "gen/suite.hpp"
#include "gen/xor_chains.hpp"
#include "solver/brute_force.hpp"
#include "solver/cdcl.hpp"

namespace gridsat::gen {
namespace {

using cnf::CnfFormula;
using cnf::LBool;
using cnf::Lit;
using solver::SolveStatus;

SolveStatus solve(const CnfFormula& f) {
  solver::CdclSolver s(f);
  return s.solve();
}

TEST(RandomKsatTest, ShapeAndDeterminism) {
  const CnfFormula a = random_ksat(50, 213, 3, 7);
  EXPECT_EQ(a.num_vars(), 50u);
  EXPECT_EQ(a.num_clauses(), 213u);
  for (const auto& clause : a.clauses()) {
    EXPECT_EQ(clause.size(), 3u);
    std::set<cnf::Var> vars;
    for (const Lit l : clause) vars.insert(l.var());
    EXPECT_EQ(vars.size(), 3u) << "duplicate variable in a clause";
  }
  const CnfFormula b = random_ksat(50, 213, 3, 7);
  EXPECT_EQ(a, b);
  const CnfFormula c = random_ksat(50, 213, 3, 8);
  EXPECT_FALSE(a == c);
}

TEST(RandomKsatTest, PlantedAlwaysSat) {
  for (int seed = 0; seed < 20; ++seed) {
    const CnfFormula f = random_ksat_planted(30, 180, 3, seed);
    EXPECT_EQ(solve(f), SolveStatus::kSat) << "seed " << seed;
  }
}

TEST(PigeonholeTest, SizesAndStatus) {
  const CnfFormula f = pigeonhole(4, 3);
  EXPECT_EQ(f.num_vars(), 12u);
  // 4 at-least-one clauses + 3 holes * C(4,2) pairwise exclusions.
  EXPECT_EQ(f.num_clauses(), 4u + 3u * 6u);
  EXPECT_EQ(solve(f), SolveStatus::kUnsat);
  EXPECT_EQ(solve(pigeonhole(3, 3)), SolveStatus::kSat);
  EXPECT_EQ(solve(pigeonhole(3, 4)), SolveStatus::kSat);
}

TEST(XorSystemTest, StatusesByConstruction) {
  XorSystemParams params;
  params.num_vars = 20;
  params.num_equations = 18;
  params.width = 3;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    params.seed = seed;
    params.consistent = true;
    EXPECT_EQ(solve(xor_system(params)), SolveStatus::kSat) << seed;
    params.consistent = false;
    EXPECT_EQ(solve(xor_system(params)), SolveStatus::kUnsat) << seed;
  }
}

TEST(XorSystemTest, ClauseCountPerEquation) {
  XorSystemParams params;
  params.num_vars = 10;
  params.num_equations = 5;
  params.width = 4;
  params.consistent = true;
  const CnfFormula f = xor_system(params);
  // Each width-4 XOR expands to 2^(4-1) = 8 clauses.
  EXPECT_EQ(f.num_clauses(), 5u * 8u);
}

TEST(UrquhartTest, AlwaysUnsatAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    EXPECT_EQ(solve(urquhart_like(6, seed)), SolveStatus::kUnsat) << seed;
  }
}

TEST(CircuitBuilderTest, GateSemantics) {
  // Verify each gate's truth table by brute-force model counting.
  for (int gate = 0; gate < 3; ++gate) {
    CircuitBuilder cb;
    const Lit a = cb.input();
    const Lit b = cb.input();
    Lit out = cb.constant(false);
    switch (gate) {
      case 0: out = cb.and_gate(a, b); break;
      case 1: out = cb.or_gate(a, b); break;
      case 2: out = cb.xor_gate(a, b); break;
    }
    cb.assert_lit(out);
    const CnfFormula f = cb.take();
    const std::uint64_t expected = gate == 0 ? 1u : gate == 1 ? 3u : 2u;
    EXPECT_EQ(solver::brute_force_count(f), expected) << "gate " << gate;
  }
}

TEST(CircuitBuilderTest, MuxSemantics) {
  CircuitBuilder cb;
  const Lit sel = cb.input();
  const Lit x = cb.input();
  const Lit y = cb.input();
  const Lit out = cb.mux_gate(sel, x, y);
  cb.assert_lit(out);
  // out=1 iff (sel & x) | (~sel & y): of 8 assignments, 4 satisfy.
  EXPECT_EQ(solver::brute_force_count(cb.take()), 4u);
}

TEST(CircuitBuilderTest, AdderAddsCorrectly) {
  for (std::uint64_t a = 0; a < 8; ++a) {
    for (std::uint64_t b = 0; b < 8; ++b) {
      CircuitBuilder cb;
      const auto bus_a = cb.input_bus(3);
      const auto bus_b = cb.input_bus(3);
      const auto sum = cb.adder(bus_a, bus_b, /*keep_carry=*/true);
      cb.assert_bus(bus_a, a);
      cb.assert_bus(bus_b, b);
      cb.assert_bus(sum, a + b);
      EXPECT_EQ(solve(cb.take()), SolveStatus::kSat) << a << "+" << b;
    }
  }
}

TEST(CircuitBuilderTest, MultiplierMultipliesCorrectly) {
  for (std::uint64_t a = 1; a < 8; a += 2) {
    for (std::uint64_t b = 2; b < 8; b += 3) {
      CircuitBuilder cb;
      const auto bus_a = cb.input_bus(3);
      const auto bus_b = cb.input_bus(3);
      const auto prod = cb.multiplier(bus_a, bus_b);
      cb.assert_bus(bus_a, a);
      cb.assert_bus(bus_b, b);
      cb.assert_bus(prod, a * b);
      EXPECT_EQ(solve(cb.take()), SolveStatus::kSat) << a << "*" << b;
      CircuitBuilder cb2;
      const auto a2 = cb2.input_bus(3);
      const auto b2 = cb2.input_bus(3);
      const auto p2 = cb2.multiplier(a2, b2);
      cb2.assert_bus(a2, a);
      cb2.assert_bus(b2, b);
      cb2.assert_bus(p2, a * b + 1);  // wrong product
      EXPECT_EQ(solve(cb2.take()), SolveStatus::kUnsat);
    }
  }
}

TEST(CircuitFamiliesTest, FactoringFindsTrueFactors) {
  const CnfFormula f = factoring(15, 3);  // 3 * 5
  solver::CdclSolver s(f);
  ASSERT_EQ(s.solve(), SolveStatus::kSat);
  EXPECT_TRUE(is_model(f, s.model()));
}

TEST(CircuitFamiliesTest, FactoringRejectsPrimes) {
  for (const std::uint64_t prime : {7ull, 11ull, 13ull}) {
    EXPECT_EQ(solve(factoring(prime, 3)), SolveStatus::kUnsat) << prime;
  }
}

TEST(CircuitFamiliesTest, CounterBmcExactness) {
  // A 3-bit counter after 5 steps reads 5; anything else is UNSAT.
  for (std::uint64_t target = 0; target < 8; ++target) {
    const SolveStatus expected =
        target == 5 ? SolveStatus::kSat : SolveStatus::kUnsat;
    EXPECT_EQ(solve(counter_bmc(3, 5, target)), expected) << target;
  }
  // Wrap-around: 10 steps on 3 bits lands on 2.
  EXPECT_EQ(solve(counter_bmc(3, 10, 2)), SolveStatus::kSat);
}

TEST(CircuitFamiliesTest, AdderMiterStatuses) {
  EXPECT_EQ(solve(adder_miter(4, false, 7)), SolveStatus::kUnsat);
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    EXPECT_EQ(solve(adder_miter(4, true, seed)), SolveStatus::kSat) << seed;
  }
}

TEST(CircuitFamiliesTest, MultCommMiterUnsat) {
  EXPECT_EQ(solve(mult_comm_miter(2)), SolveStatus::kUnsat);
  EXPECT_EQ(solve(mult_comm_miter(4)), SolveStatus::kUnsat);
}

TEST(GraphColorTest, KnownColorabilities) {
  // A triangle needs 3 colors.
  EXPECT_EQ(solve(graph_coloring(3, 3, 2, 1)), SolveStatus::kUnsat);
  EXPECT_EQ(solve(graph_coloring(3, 3, 3, 1)), SolveStatus::kSat);
  // Grids are bipartite.
  EXPECT_EQ(solve(grid_coloring(3, 3, 2, false)), SolveStatus::kSat);
  EXPECT_EQ(solve(grid_coloring(3, 3, 2, true)), SolveStatus::kUnsat);
}

TEST(ChessboardTest, MutilatedBoardUnsatIntactBoardSat) {
  EXPECT_EQ(solve(mutilated_chessboard(2)), SolveStatus::kUnsat);
}

TEST(PaperExampleTest, ShapeMatchesPaper) {
  const CnfFormula f = paper_example_formula();
  EXPECT_EQ(f.num_vars(), 14u);
  EXPECT_EQ(f.num_clauses(), 9u);
  EXPECT_EQ(paper_example_decisions().size(), 6u);
}

TEST(SuiteTest, Table1HasAllFortyTwoRows) {
  const auto& rows = suite::table1();
  EXPECT_EQ(rows.size(), 42u);
  std::set<std::string> names;
  for (const auto& row : rows) {
    EXPECT_TRUE(names.insert(row.paper_name).second)
        << "duplicate row " << row.paper_name;
    EXPECT_TRUE(row.make != nullptr);
    EXPECT_FALSE(row.analog.empty());
  }
  // Section sizes from the paper: 23 solved-by-both, 10 GridSAT-only,
  // 9 unsolved.
  std::size_t counts[3] = {0, 0, 0};
  for (const auto& row : rows) ++counts[static_cast<int>(row.section)];
  EXPECT_EQ(counts[0], 23u);
  EXPECT_EQ(counts[1], 10u);
  EXPECT_EQ(counts[2], 9u);
}

TEST(SuiteTest, Table2IsTheUnsolvedSection) {
  const auto& rows = suite::table2();
  EXPECT_EQ(rows.size(), 9u);
  for (const auto& row : rows) {
    EXPECT_EQ(row.section, suite::Table1Section::kUnsolved);
  }
}

TEST(SuiteTest, AllFormulasBuildAndValidate) {
  for (const auto& row : suite::table1()) {
    const CnfFormula f = row.make();
    EXPECT_GT(f.num_vars(), 0u) << row.paper_name;
    EXPECT_GT(f.num_clauses(), 0u) << row.paper_name;
    EXPECT_EQ(f.validate(), "") << row.paper_name;
  }
}

TEST(SuiteTest, GenerationIsDeterministic) {
  for (const auto& row : suite::table1()) {
    EXPECT_TRUE(row.make() == row.make()) << row.paper_name;
  }
}

TEST(SuiteTest, ByNameLookup) {
  EXPECT_EQ(suite::by_name("6pipe.cnf").paper_name, "6pipe.cnf");
  EXPECT_THROW(suite::by_name("nonexistent.cnf"), std::out_of_range);
}

}  // namespace
}  // namespace gridsat::gen
