// Tests for the grid information layer: NWS-analog forecaster and the
// resource directory / ranking.
#include <gtest/gtest.h>

#include "grid/directory.hpp"
#include "grid/forecaster.hpp"
#include "util/rng.hpp"

namespace gridsat::grid {
namespace {

TEST(ForecasterTest, OptimisticBeforeData) {
  Forecaster f;
  EXPECT_DOUBLE_EQ(f.forecast(), 1.0);
}

TEST(ForecasterTest, ConvergesOnConstantSeries) {
  Forecaster f;
  for (int i = 0; i < 50; ++i) f.observe(0.6);
  EXPECT_NEAR(f.forecast(), 0.6, 1e-9);
}

TEST(ForecasterTest, TracksSlowDrift) {
  Forecaster f;
  double value = 0.9;
  for (int i = 0; i < 100; ++i) {
    f.observe(value);
    value = std::max(0.1, value - 0.005);
  }
  EXPECT_NEAR(f.forecast(), value, 0.1);
}

TEST(ForecasterTest, NoisySeriesPrefersSmoothing) {
  // With heavy symmetric noise around 0.5, a windowed predictor beats
  // last-value; the forecast should sit near the true mean.
  Forecaster f;
  util::Xoshiro256 rng(5);
  for (int i = 0; i < 500; ++i) {
    f.observe(0.5 + 0.3 * (rng.uniform() - 0.5));
  }
  EXPECT_NEAR(f.forecast(), 0.5, 0.12);
  EXPECT_NE(f.best_predictor(), "last");
}

TEST(ForecasterTest, SamplesCounted) {
  Forecaster f;
  for (int i = 0; i < 7; ++i) f.observe(1.0);
  EXPECT_EQ(f.samples(), 7u);
}

TEST(DirectoryTest, RanksBySpeedTimesForecast) {
  ResourceDirectory dir;
  sim::HostSpec fast;
  fast.name = "fast";
  fast.speed = 8000;
  sim::HostSpec slow;
  slow.name = "slow";
  slow.speed = 2000;
  const std::size_t i_fast = dir.add(fast);
  const std::size_t i_slow = dir.add(slow);
  EXPECT_GT(dir.rank(i_fast), dir.rank(i_slow));
  // Degrade the fast host's observed availability below 1/4 and the
  // ranking flips.
  for (int i = 0; i < 50; ++i) dir.at(i_fast).forecaster.observe(0.1);
  EXPECT_LT(dir.rank(i_fast), dir.rank(i_slow));
}

TEST(DirectoryTest, BestInStateRespectsMemoryFloor) {
  ResourceDirectory dir;
  sim::HostSpec big;
  big.name = "big";
  big.speed = 1000;
  big.memory_bytes = 64 * 1024 * 1024;
  sim::HostSpec tiny;
  tiny.name = "tiny";
  tiny.speed = 9000;
  tiny.memory_bytes = 1024;
  const std::size_t i_big = dir.add(big);
  const std::size_t i_tiny = dir.add(tiny);
  dir.at(i_big).state = HostState::kIdle;
  dir.at(i_tiny).state = HostState::kIdle;
  // Without a floor the tiny-but-fast host wins; with the paper's memory
  // floor it is skipped.
  EXPECT_EQ(dir.best_in_state(HostState::kIdle, 0),
            static_cast<std::ptrdiff_t>(i_tiny));
  EXPECT_EQ(dir.best_in_state(HostState::kIdle, 2 * 1024 * 1024),
            static_cast<std::ptrdiff_t>(i_big));
}

TEST(DirectoryTest, BestInStateFiltersByState) {
  ResourceDirectory dir;
  sim::HostSpec spec;
  spec.speed = 1000;
  const std::size_t a = dir.add(spec);
  const std::size_t b = dir.add(spec);
  dir.at(a).state = HostState::kBusy;
  dir.at(b).state = HostState::kIdle;
  EXPECT_EQ(dir.best_in_state(HostState::kIdle, 0),
            static_cast<std::ptrdiff_t>(b));
  dir.at(b).state = HostState::kBusy;
  EXPECT_EQ(dir.best_in_state(HostState::kIdle, 0), -1);
}

TEST(DirectoryTest, CountsStates) {
  ResourceDirectory dir;
  sim::HostSpec spec;
  for (int i = 0; i < 5; ++i) dir.add(spec);
  dir.at(0).state = HostState::kBusy;
  dir.at(1).state = HostState::kBusy;
  dir.at(2).state = HostState::kIdle;
  EXPECT_EQ(dir.count_in_state(HostState::kBusy), 2u);
  EXPECT_EQ(dir.count_in_state(HostState::kIdle), 1u);
  EXPECT_EQ(dir.count_in_state(HostState::kFree), 2u);
}

TEST(DirectoryTest, StateNames) {
  EXPECT_STREQ(to_string(HostState::kFree), "free");
  EXPECT_STREQ(to_string(HostState::kReserved), "reserved");
  EXPECT_STREQ(to_string(HostState::kDead), "dead");
}

}  // namespace
}  // namespace gridsat::grid
