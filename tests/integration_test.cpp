// Cross-module integration: preprocessing feeding the grid campaign, the
// thread-parallel solver agreeing with the simulated campaign, DIMACS
// files flowing through the whole pipeline, and proofs logged for
// instances the campaign refutes.
#include <gtest/gtest.h>

#include "cnf/dimacs.hpp"
#include "core/campaign.hpp"
#include "core/sequential.hpp"
#include "core/testbeds.hpp"
#include "gen/pigeonhole.hpp"
#include "gen/quasigroup.hpp"
#include "gen/random_ksat.hpp"
#include "solver/parallel.hpp"
#include "solver/preprocess.hpp"
#include "solver/proof.hpp"

namespace gridsat {
namespace {

using cnf::CnfFormula;
using core::CampaignStatus;
using solver::SolveStatus;

constexpr std::size_t kMiB = 1024 * 1024;

std::vector<sim::HostSpec> hosts4() {
  std::vector<sim::HostSpec> hosts;
  for (int i = 0; i < 4; ++i) {
    sim::HostSpec spec;
    spec.name = "h" + std::to_string(i);
    spec.site = "one";
    spec.speed = 4000.0;
    spec.memory_bytes = 32 * kMiB;
    hosts.push_back(spec);
  }
  return hosts;
}

core::GridSatConfig quick_config() {
  core::GridSatConfig config;
  config.split_timeout_s = 5.0;
  config.overall_timeout_s = 1e8;
  config.min_client_memory = 1 * kMiB;
  return config;
}

TEST(IntegrationTest, PreprocessThenCampaignAgrees) {
  for (int seed = 0; seed < 4; ++seed) {
    const CnfFormula f =
        gen::random_ksat(50, 213, 3, static_cast<std::uint64_t>(seed) + 900);
    core::SequentialOptions seq;
    seq.host = core::testbeds::fastest_dedicated();
    seq.timeout_s = 1e9;
    const auto truth = core::run_sequential(f, seq).status;
    ASSERT_NE(truth, SolveStatus::kUnknown);

    const solver::PreprocessResult pre = solver::preprocess(f);
    if (pre.unsat) {
      EXPECT_EQ(truth, SolveStatus::kUnsat) << "seed " << seed;
      continue;
    }
    core::Campaign campaign(pre.simplified, "one", hosts4(), quick_config());
    const core::GridSatResult result = campaign.run();
    if (truth == SolveStatus::kSat) {
      ASSERT_EQ(result.status, CampaignStatus::kSat) << "seed " << seed;
      const cnf::Assignment full =
          solver::reconstruct_model(pre, result.model);
      EXPECT_TRUE(is_model(f, full)) << "seed " << seed;
    } else {
      EXPECT_EQ(result.status, CampaignStatus::kUnsat) << "seed " << seed;
    }
  }
}

TEST(IntegrationTest, ParallelSolverAgreesWithCampaign) {
  const CnfFormula f = gen::pigeonhole_unsat(7);
  core::Campaign campaign(f, "one", hosts4(), quick_config());
  const auto campaign_status = campaign.run().status;

  solver::ParallelOptions options;
  options.num_threads = 3;
  options.slice_work = 50'000;
  solver::ParallelSolver parallel(f, options);
  const auto parallel_status = parallel.solve().status;

  EXPECT_EQ(campaign_status, CampaignStatus::kUnsat);
  EXPECT_EQ(parallel_status, SolveStatus::kUnsat);
}

TEST(IntegrationTest, DimacsFileThroughWholePipeline) {
  // Generate -> write -> parse -> preprocess -> campaign, end to end.
  gen::QuasigroupParams params;
  params.order = 6;
  params.seed = 4;
  const CnfFormula original = gen::quasigroup_completion(params);
  const std::string path = testing::TempDir() + "/integration_qg.cnf";
  cnf::write_dimacs_file(original, path);
  const CnfFormula loaded = cnf::parse_dimacs_file(path);
  ASSERT_TRUE(original == loaded);

  const solver::PreprocessResult pre = solver::preprocess(loaded);
  ASSERT_FALSE(pre.unsat);
  core::Campaign campaign(pre.simplified, "one", hosts4(), quick_config());
  const core::GridSatResult result = campaign.run();
  ASSERT_EQ(result.status, CampaignStatus::kSat);
  const cnf::Assignment full = solver::reconstruct_model(pre, result.model);
  EXPECT_TRUE(is_model(original, full));
}

TEST(IntegrationTest, SequentialProofForCampaignRefutedInstance) {
  if (!solver::kProofCompiledIn) GTEST_SKIP() << "GRIDSAT_PROOF is off";
  // The campaign refutes it; an independent proof-logging sequential run
  // certifies the UNSAT verdict mechanically.
  const CnfFormula f = gen::pigeonhole_unsat(6);
  core::Campaign campaign(f, "one", hosts4(), quick_config());
  ASSERT_EQ(campaign.run().status, CampaignStatus::kUnsat);

  solver::SolverConfig config;
  config.log_proof = true;
  solver::CdclSolver certifier(f, config);
  ASSERT_EQ(certifier.solve(), SolveStatus::kUnsat);
  const auto check = solver::check_unsat_proof(f, certifier.proof());
  EXPECT_TRUE(check.valid) << check.message;
}

}  // namespace
}  // namespace gridsat
