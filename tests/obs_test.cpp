// Observability-layer tests: tracer ring semantics, Chrome-trace JSON
// well-formedness (checked by a small in-test JSON parser — the repo has
// a writer, deliberately no reader), metric-registry determinism across
// thread counts, and an instrumented end-to-end parallel solve (the
// TSAN-matrix entry point for the whole obs wiring).
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <thread>
#include <vector>

#include "core/campaign.hpp"
#include "gen/pigeonhole.hpp"
#include "gen/xor_chains.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/host.hpp"
#include "solver/parallel.hpp"

namespace gridsat::obs {
namespace {

// --- minimal recursive-descent JSON validator ------------------------------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }
  bool string() {
    if (!eat('"')) return false;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    return eat('"');
  }
  bool number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool digits = false;
    const auto digit_run = [this, &digits] {
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
        digits = true;
      }
    };
    digit_run();
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      digit_run();
    }
    if (digits && pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
      digit_run();
    }
    return digits && pos_ > start;
  }
  bool value() {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    if (!eat('{')) return false;
    skip_ws();
    if (eat('}')) return true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!eat(':')) return false;
      if (!value()) return false;
      skip_ws();
      if (eat('}')) return true;
      if (!eat(',')) return false;
    }
  }
  bool array() {
    if (!eat('[')) return false;
    skip_ws();
    if (eat(']')) return true;
    for (;;) {
      if (!value()) return false;
      skip_ws();
      if (eat(']')) return true;
      if (!eat(',')) return false;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(JsonCheckerSelfTest, AcceptsAndRejects) {
  EXPECT_TRUE(JsonChecker(R"({"a":[1,2.5,-3e2],"b":"x\"y","c":null})").valid());
  EXPECT_FALSE(JsonChecker(R"({"a":1,})").valid());
  EXPECT_FALSE(JsonChecker(R"([1,2)").valid());
  EXPECT_FALSE(JsonChecker("{} trailing").valid());
}

// --- tracer -----------------------------------------------------------------

TEST(TracerTest, DisabledByDefaultAndHelperRespectsIt) {
  Tracer tracer(64);
  const std::uint32_t w = tracer.register_worker("w");
  trace_event(&tracer, w, EventKind::kConflict, 3, 4);
  EXPECT_EQ(tracer.total_emitted(), 0u);
  tracer.set_enabled(true);
  trace_event(&tracer, w, EventKind::kConflict, 3, 4);
  EXPECT_EQ(tracer.total_emitted(), kTraceCompiledIn ? 1u : 0u);
  trace_event(nullptr, w, EventKind::kConflict);  // null tracer: no-op
}

TEST(TracerTest, RingWrapsKeepingNewestAndCountingDropped) {
  Tracer tracer(16);  // already a power of two => capacity 16
  ASSERT_EQ(tracer.capacity_per_worker(), 16u);
  tracer.set_enabled(true);
  const std::uint32_t w = tracer.register_worker("w");
  if (!kTraceCompiledIn) GTEST_SKIP() << "tracer compiled out";
  for (std::uint64_t i = 0; i < 40; ++i) {
    tracer.emit(w, EventKind::kRestart, i);
  }
  EXPECT_EQ(tracer.dropped(w), 40u - 16u);
  const std::vector<TraceEvent> events = tracer.events(w);
  ASSERT_EQ(events.size(), 16u);
  // Oldest-first drain of the newest window: 24..39.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, 24u + i);
  }
}

TEST(TracerTest, CapacityRoundsUpToPowerOfTwo) {
  Tracer tracer(100);
  EXPECT_EQ(tracer.capacity_per_worker(), 128u);
  Tracer tiny(1);
  EXPECT_EQ(tiny.capacity_per_worker(), 16u);  // floor
}

TEST(TracerTest, RegisterWorkerIsFindOrCreate) {
  Tracer tracer(16);
  const std::uint32_t a = tracer.register_worker("alpha");
  const std::uint32_t b = tracer.register_worker("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(tracer.register_worker("alpha"), a);
  EXPECT_EQ(tracer.num_workers(), 2u);
  EXPECT_EQ(tracer.worker_name(b), "beta");
}

TEST(TracerTest, InternRoundTrips) {
  Tracer tracer(16);
  const std::uint32_t id = tracer.intern("SPLIT_REQUEST");
  EXPECT_EQ(tracer.intern("SPLIT_REQUEST"), id);
  EXPECT_EQ(tracer.interned(id), "SPLIT_REQUEST");
}

TEST(TracerTest, ManualClockAndEmitAtOrderMergedDrain) {
  if (!kTraceCompiledIn) GTEST_SKIP() << "tracer compiled out";
  Tracer tracer(16, Tracer::Clock::kManual);
  tracer.set_enabled(true);
  const std::uint32_t a = tracer.register_worker("a");
  const std::uint32_t b = tracer.register_worker("b");
  tracer.set_manual_time(5.0);
  tracer.emit(a, EventKind::kPhase, tracer.intern("mid"));
  tracer.emit_at(1.0, b, EventKind::kPhase, tracer.intern("early"));
  tracer.emit_at(9.0, a, EventKind::kPhase, tracer.intern("late"));
  const std::vector<TraceEvent> all = tracer.all_events();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_DOUBLE_EQ(all[0].ts, 1.0);
  EXPECT_DOUBLE_EQ(all[1].ts, 5.0);
  EXPECT_DOUBLE_EQ(all[2].ts, 9.0);
  EXPECT_EQ(tracer.interned(static_cast<std::uint32_t>(all[0].a)), "early");
}

TEST(TracerTest, ChromeTraceJsonIsValidAndNamesLanes) {
  if (!kTraceCompiledIn) GTEST_SKIP() << "tracer compiled out";
  Tracer tracer(64, Tracer::Clock::kManual);
  tracer.set_enabled(true);
  const std::uint32_t w = tracer.register_worker("client:torc1");
  tracer.set_manual_time(2.0);
  tracer.emit(w, EventKind::kConflict, 4, 7);
  tracer.emit(w, EventKind::kMsgSend, tracer.intern("SPLIT_REQUEST"), 0);
  tracer.emit(w, EventKind::kCounter, tracer.intern("campaign.splits"), 3);
  const std::string json = chrome_trace_json(tracer);
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("client:torc1"), std::string::npos);
  EXPECT_NE(json.find("SPLIT_REQUEST"), std::string::npos);
  EXPECT_NE(json.find("campaign.splits"), std::string::npos);
}

TEST(TracerTest, TextTimelineRendersFigure3Style) {
  if (!kTraceCompiledIn) GTEST_SKIP() << "tracer compiled out";
  Tracer tracer(64, Tracer::Clock::kManual);
  tracer.set_enabled(true);
  const std::uint32_t c = tracer.register_worker("client:torc1");
  const std::uint32_t m = tracer.register_worker("master");
  tracer.set_manual_time(12.5);
  tracer.emit(c, EventKind::kMsgSend, tracer.intern("SPLIT_REQUEST"), m);
  tracer.emit_at(12.6, m, EventKind::kMsgRecv, tracer.intern("SPLIT_REQUEST"),
                 c);
  const std::string text = text_timeline(tracer);
  EXPECT_NE(text.find("client:torc1"), std::string::npos);
  EXPECT_NE(text.find("SPLIT_REQUEST -> master"), std::string::npos);
  EXPECT_NE(text.find("SPLIT_REQUEST <- client:torc1"), std::string::npos);
  const std::string capped = text_timeline(tracer, 1);
  EXPECT_NE(capped.find("truncated"), std::string::npos);
}

// --- metric registry --------------------------------------------------------

TEST(MetricRegistryTest, CountersAreExactAcrossThreadCounts) {
  // The same total arrives regardless of how many threads split the adds,
  // and snapshots list metrics in one (sorted) order.
  for (const int threads : {1, 2, 4}) {
    MetricRegistry registry;
    Counter& hits = registry.counter("a.hits");
    registry.counter("b.misses").add(7);
    constexpr std::uint64_t kPerThread = 10'000;
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&hits] {
        for (std::uint64_t i = 0; i < kPerThread; ++i) hits.add();
      });
    }
    for (auto& t : pool) t.join();
    EXPECT_EQ(hits.get(), kPerThread * static_cast<std::uint64_t>(threads));
    const std::vector<MetricRegistry::Sample> snap = registry.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0].name, "a.hits");
    EXPECT_EQ(snap[1].name, "b.misses");
    EXPECT_DOUBLE_EQ(snap[1].value, 7.0);
  }
}

TEST(MetricRegistryTest, GaugeFnEvaluatesAtSnapshotAndFreezes) {
  MetricRegistry registry;
  int live = 41;
  registry.gauge_fn("pool.size", [&live] { return static_cast<double>(live); });
  live = 42;
  EXPECT_DOUBLE_EQ(registry.snapshot()[0].value, 42.0);
  registry.set_gauge("pool.size", 99.0);  // freeze: callback dropped
  live = 0;
  EXPECT_DOUBLE_EQ(registry.snapshot()[0].value, 99.0);
}

TEST(MetricRegistryTest, HistogramTracksCountAndMean) {
  MetricRegistry registry;
  HistogramMetric& h = registry.histogram("lbd", 0.0, 10.0, 10);
  for (const double x : {2.0, 4.0, 6.0}) h.observe(x);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
  const std::vector<MetricRegistry::Sample> snap = registry.snapshot();
  ASSERT_EQ(snap.size(), 2u);  // lbd.count + lbd.mean
  EXPECT_EQ(snap[0].name, "lbd.count");
  EXPECT_EQ(snap[1].name, "lbd.mean");
}

TEST(MetricRegistryTest, SnapshotToEmitsCounterEvents) {
  if (!kTraceCompiledIn) GTEST_SKIP() << "tracer compiled out";
  MetricRegistry registry;
  registry.counter("x").add(5);
  Tracer tracer(16);
  tracer.set_enabled(true);
  const std::uint32_t lane = tracer.register_worker("sampler");
  registry.snapshot_to(tracer, lane);
  const std::vector<TraceEvent> events = tracer.events(lane);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, EventKind::kCounter);
  EXPECT_EQ(tracer.interned(static_cast<std::uint32_t>(events[0].a)), "x");
  EXPECT_EQ(events[0].b, 5u);
}

// --- end-to-end: instrumented parallel solve (TSAN entry point) ------------

TEST(InstrumentedParallelTest, FourThreadSolveTracesAndCounts) {
  const cnf::CnfFormula f = gen::urquhart_like(10, 1);
  Tracer tracer(1u << 12);
  tracer.set_enabled(true);
  MetricRegistry registry;
  solver::ParallelOptions options;
  options.num_threads = 4;
  options.slice_work = 2'000;  // frequent cooperation: more events
  options.tracer = &tracer;
  options.metrics = &registry;
  solver::ParallelSolver solver(f, options);
  const solver::ParallelResult result = solver.solve();
  EXPECT_EQ(result.status, solver::SolveStatus::kUnsat);

  // The facade must agree with the registry it is read from.
  EXPECT_EQ(result.stats.total_work,
            registry.counter("parallel.total_work").get());
  EXPECT_EQ(result.stats.clauses_published,
            registry.counter("parallel.clauses_published").get());
  // Gauges were frozen before the pool died; snapshotting is safe now.
  for (const MetricRegistry::Sample& s : registry.snapshot()) {
    if (s.name == "sharing.pool_clauses") {
      EXPECT_DOUBLE_EQ(
          s.value, static_cast<double>(result.stats.clauses_published));
    }
  }

  if (!kTraceCompiledIn) return;
  EXPECT_EQ(tracer.num_workers(), 4u);
  EXPECT_GT(tracer.total_emitted(), 0u);
  bool saw_conflict = false;
  for (const TraceEvent& ev : tracer.all_events()) {
    saw_conflict |= ev.kind == EventKind::kConflict;
  }
  EXPECT_TRUE(saw_conflict);
  EXPECT_TRUE(JsonChecker(chrome_trace_json(tracer)).valid());
}

TEST(InstrumentedParallelTest, ExternalRegistryReportsPerRunDeltas) {
  const cnf::CnfFormula f = gen::urquhart_like(8, 1);
  MetricRegistry registry;
  solver::ParallelOptions options;
  options.num_threads = 2;
  options.metrics = &registry;
  solver::ParallelSolver first(f, options);
  const std::uint64_t work_one = first.solve().stats.total_work;
  solver::ParallelSolver second(f, options);
  const std::uint64_t work_two = second.solve().stats.total_work;
  EXPECT_GT(work_one, 0u);
  EXPECT_GT(work_two, 0u);
  // The registry accumulates, the per-run facade does not.
  EXPECT_EQ(registry.counter("parallel.total_work").get(),
            work_one + work_two);
}

// --- end-to-end: instrumented sim campaign ---------------------------------

TEST(InstrumentedCampaignTest, VirtualTimeTraceNamesPhasesAndMessages) {
  if (!kTraceCompiledIn) GTEST_SKIP() << "tracer compiled out";
  const cnf::CnfFormula f = gen::pigeonhole_unsat(6);
  core::GridSatConfig config;
  config.split_timeout_s = 5.0;
  config.overall_timeout_s = 100000.0;
  config.min_client_memory = 1 << 20;
  std::vector<sim::HostSpec> hosts;
  for (int i = 0; i < 3; ++i) {
    sim::HostSpec spec;
    spec.name = "node" + std::to_string(i);
    spec.site = "utk";
    spec.speed = 3000.0;
    spec.memory_bytes = 8u << 20;
    spec.seed = 7 + i;
    hosts.push_back(spec);
  }
  core::Campaign campaign(f, "utk", std::move(hosts), config);
  Tracer tracer(1u << 14, Tracer::Clock::kManual);
  tracer.set_enabled(true);
  campaign.set_tracer(&tracer);
  MetricRegistry registry;
  campaign.set_metrics(&registry);
  const core::GridSatResult result = campaign.run();
  EXPECT_EQ(result.status, core::CampaignStatus::kUnsat);

  const std::string timeline = text_timeline(tracer);
  EXPECT_NE(timeline.find("SUBPROBLEM -> client:node"), std::string::npos);
  EXPECT_NE(timeline.find("subproblem-start"), std::string::npos);
  EXPECT_NE(timeline.find("verdict-unsat"), std::string::npos);

  // Timestamps are virtual seconds: monotone in the merged drain and
  // bounded by the campaign's virtual duration.
  double prev = 0.0;
  for (const TraceEvent& ev : tracer.all_events()) {
    EXPECT_GE(ev.ts, prev);
    prev = ev.ts;
  }
  EXPECT_LE(prev, result.seconds + 1e9);  // delivery events may trail

  // Frozen campaign gauges survive the campaign object.
  bool saw_splits = false;
  for (const MetricRegistry::Sample& s : registry.snapshot()) {
    if (s.name == "campaign.splits") {
      saw_splits = true;
      EXPECT_DOUBLE_EQ(s.value, static_cast<double>(result.total_splits));
    }
  }
  EXPECT_TRUE(saw_splits);
}

}  // namespace
}  // namespace gridsat::obs
