// Observability-layer tests: tracer ring semantics, Chrome-trace JSON
// well-formedness (checked by a small in-test JSON validator; the full
// reader lives in obs/analyze and is exercised by the analyzer tests
// below), metric-registry determinism across thread counts, and an
// instrumented end-to-end parallel solve (the TSAN-matrix entry point
// for the whole obs wiring, including concurrent flow-stamped message
// emission).
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <thread>
#include <vector>

#include "core/campaign.hpp"
#include "gen/pigeonhole.hpp"
#include "gen/xor_chains.hpp"
#include "obs/analyze.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/host.hpp"
#include "solver/parallel.hpp"

namespace gridsat::obs {
namespace {

// --- minimal recursive-descent JSON validator ------------------------------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }
  bool string() {
    if (!eat('"')) return false;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    return eat('"');
  }
  bool number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool digits = false;
    const auto digit_run = [this, &digits] {
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
        digits = true;
      }
    };
    digit_run();
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      digit_run();
    }
    if (digits && pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
      digit_run();
    }
    return digits && pos_ > start;
  }
  bool value() {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    if (!eat('{')) return false;
    skip_ws();
    if (eat('}')) return true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!eat(':')) return false;
      if (!value()) return false;
      skip_ws();
      if (eat('}')) return true;
      if (!eat(',')) return false;
    }
  }
  bool array() {
    if (!eat('[')) return false;
    skip_ws();
    if (eat(']')) return true;
    for (;;) {
      if (!value()) return false;
      skip_ws();
      if (eat(']')) return true;
      if (!eat(',')) return false;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(JsonCheckerSelfTest, AcceptsAndRejects) {
  EXPECT_TRUE(JsonChecker(R"({"a":[1,2.5,-3e2],"b":"x\"y","c":null})").valid());
  EXPECT_FALSE(JsonChecker(R"({"a":1,})").valid());
  EXPECT_FALSE(JsonChecker(R"([1,2)").valid());
  EXPECT_FALSE(JsonChecker("{} trailing").valid());
}

// --- tracer -----------------------------------------------------------------

TEST(TracerTest, DisabledByDefaultAndHelperRespectsIt) {
  Tracer tracer(64);
  const std::uint32_t w = tracer.register_worker("w");
  trace_event(&tracer, w, EventKind::kConflict, 3, 4);
  EXPECT_EQ(tracer.total_emitted(), 0u);
  tracer.set_enabled(true);
  trace_event(&tracer, w, EventKind::kConflict, 3, 4);
  EXPECT_EQ(tracer.total_emitted(), kTraceCompiledIn ? 1u : 0u);
  trace_event(nullptr, w, EventKind::kConflict);  // null tracer: no-op
}

TEST(TracerTest, RingWrapsKeepingNewestAndCountingDropped) {
  Tracer tracer(16);  // already a power of two => capacity 16
  ASSERT_EQ(tracer.capacity_per_worker(), 16u);
  tracer.set_enabled(true);
  const std::uint32_t w = tracer.register_worker("w");
  if (!kTraceCompiledIn) GTEST_SKIP() << "tracer compiled out";
  for (std::uint64_t i = 0; i < 40; ++i) {
    tracer.emit(w, EventKind::kRestart, i);
  }
  EXPECT_EQ(tracer.dropped(w), 40u - 16u);
  const std::vector<TraceEvent> events = tracer.events(w);
  ASSERT_EQ(events.size(), 16u);
  // Oldest-first drain of the newest window: 24..39.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, 24u + i);
  }
}

TEST(TracerTest, CapacityRoundsUpToPowerOfTwo) {
  Tracer tracer(100);
  EXPECT_EQ(tracer.capacity_per_worker(), 128u);
  Tracer tiny(1);
  EXPECT_EQ(tiny.capacity_per_worker(), 16u);  // floor
}

TEST(TracerTest, RegisterWorkerIsFindOrCreate) {
  Tracer tracer(16);
  const std::uint32_t a = tracer.register_worker("alpha");
  const std::uint32_t b = tracer.register_worker("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(tracer.register_worker("alpha"), a);
  EXPECT_EQ(tracer.num_workers(), 2u);
  EXPECT_EQ(tracer.worker_name(b), "beta");
}

TEST(TracerTest, InternRoundTrips) {
  Tracer tracer(16);
  const std::uint32_t id = tracer.intern("SPLIT_REQUEST");
  EXPECT_EQ(tracer.intern("SPLIT_REQUEST"), id);
  EXPECT_EQ(tracer.interned(id), "SPLIT_REQUEST");
}

TEST(TracerTest, ManualClockAndEmitAtOrderMergedDrain) {
  if (!kTraceCompiledIn) GTEST_SKIP() << "tracer compiled out";
  Tracer tracer(16, Tracer::Clock::kManual);
  tracer.set_enabled(true);
  const std::uint32_t a = tracer.register_worker("a");
  const std::uint32_t b = tracer.register_worker("b");
  tracer.set_manual_time(5.0);
  tracer.emit(a, EventKind::kPhase, tracer.intern("mid"));
  tracer.emit_at(1.0, b, EventKind::kPhase, tracer.intern("early"));
  tracer.emit_at(9.0, a, EventKind::kPhase, tracer.intern("late"));
  const std::vector<TraceEvent> all = tracer.all_events();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_DOUBLE_EQ(all[0].ts, 1.0);
  EXPECT_DOUBLE_EQ(all[1].ts, 5.0);
  EXPECT_DOUBLE_EQ(all[2].ts, 9.0);
  EXPECT_EQ(tracer.interned(static_cast<std::uint32_t>(all[0].a)), "early");
}

TEST(TracerTest, ChromeTraceJsonIsValidAndNamesLanes) {
  if (!kTraceCompiledIn) GTEST_SKIP() << "tracer compiled out";
  Tracer tracer(64, Tracer::Clock::kManual);
  tracer.set_enabled(true);
  const std::uint32_t w = tracer.register_worker("client:torc1");
  tracer.set_manual_time(2.0);
  tracer.emit(w, EventKind::kConflict, 4, 7);
  tracer.emit(w, EventKind::kMsgSend, tracer.intern("SPLIT_REQUEST"), 0);
  tracer.emit(w, EventKind::kCounter, tracer.intern("campaign.splits"), 3);
  const std::string json = chrome_trace_json(tracer);
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("client:torc1"), std::string::npos);
  EXPECT_NE(json.find("SPLIT_REQUEST"), std::string::npos);
  EXPECT_NE(json.find("campaign.splits"), std::string::npos);
}

TEST(TracerTest, TextTimelineRendersFigure3Style) {
  if (!kTraceCompiledIn) GTEST_SKIP() << "tracer compiled out";
  Tracer tracer(64, Tracer::Clock::kManual);
  tracer.set_enabled(true);
  const std::uint32_t c = tracer.register_worker("client:torc1");
  const std::uint32_t m = tracer.register_worker("master");
  tracer.set_manual_time(12.5);
  tracer.emit(c, EventKind::kMsgSend, tracer.intern("SPLIT_REQUEST"), m);
  tracer.emit_at(12.6, m, EventKind::kMsgRecv, tracer.intern("SPLIT_REQUEST"),
                 c);
  const std::string text = text_timeline(tracer);
  EXPECT_NE(text.find("client:torc1"), std::string::npos);
  EXPECT_NE(text.find("SPLIT_REQUEST -> master"), std::string::npos);
  EXPECT_NE(text.find("SPLIT_REQUEST <- client:torc1"), std::string::npos);
  const std::string capped = text_timeline(tracer, 1);
  EXPECT_NE(capped.find("truncated"), std::string::npos);
}

TEST(TracerTest, MsgPackingRoundTrips) {
  // kMsgSend/kMsgRecv carry (kind, flow) and (peer, bytes) in two words.
  static_assert(msg_kind_id(msg_a(7, 42)) == 7);
  static_assert(msg_flow(msg_a(7, 42)) == 42);
  static_assert(msg_peer(msg_b(3, 1000)) == 3);
  static_assert(msg_bytes(msg_b(3, 1000)) == 1000);
  // Flow ids truncate to 32 bits; byte counts saturate at 4 GiB - 1.
  EXPECT_EQ(msg_flow(msg_a(0, 0x1'0000'0001ull)), 1u);
  EXPECT_EQ(msg_bytes(msg_b(0, 0x2'0000'0000ull)), 0xffffffffu);
}

TEST(TracerTest, DroppedEventsSurfaceInChromeMetadataAndTimelineHeader) {
  if (!kTraceCompiledIn) GTEST_SKIP() << "tracer compiled out";
  Tracer tracer(16, Tracer::Clock::kManual);
  tracer.set_enabled(true);
  const std::uint32_t w = tracer.register_worker("client:busy");
  tracer.register_worker("client:quiet");
  for (std::uint64_t i = 0; i < 40; ++i) {
    tracer.emit(w, EventKind::kRestart, i);
  }
  ASSERT_EQ(tracer.dropped(w), 24u);
  const std::string json = chrome_trace_json(tracer);
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"tracer_dropped\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":24"), std::string::npos);
  EXPECT_NE(json.find("\"retained\":16"), std::string::npos);
  // The quiet lane dropped nothing and must not carry the metadata.
  EXPECT_EQ(json.find("\"dropped\":0"), std::string::npos);
  const std::string text = text_timeline(tracer);
  EXPECT_NE(text.find("# client:busy dropped 24 events"), std::string::npos);
  EXPECT_EQ(text.find("client:quiet dropped"), std::string::npos);
}

TEST(TracerTest, MessageEventsExportChromeFlowArrows) {
  if (!kTraceCompiledIn) GTEST_SKIP() << "tracer compiled out";
  Tracer tracer(64, Tracer::Clock::kManual);
  tracer.set_enabled(true);
  const std::uint32_t m = tracer.register_worker("master");
  const std::uint32_t c = tracer.register_worker("client:torc1");
  const std::uint32_t kind = tracer.intern("SUBPROBLEM");
  tracer.set_manual_time(1.0);
  tracer.emit(m, EventKind::kMsgSend, msg_a(kind, 5), msg_b(c, 4096));
  tracer.emit_at(1.5, c, EventKind::kMsgRecv, msg_a(kind, 5), msg_b(m, 4096));
  const std::string json = chrome_trace_json(tracer);
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  // One start and one finish, bound by (cat, name, id); the finish ends
  // with bp:"e" so Perfetto draws the arrow to the enclosing instant.
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"flow\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":5"), std::string::npos);
  // The instants carry the decoded facts for the analyzer.
  EXPECT_NE(json.find("\"flow\":5"), std::string::npos);
  EXPECT_NE(json.find("\"bytes\":4096"), std::string::npos);
}

// --- metric registry --------------------------------------------------------

TEST(MetricRegistryTest, CountersAreExactAcrossThreadCounts) {
  // The same total arrives regardless of how many threads split the adds,
  // and snapshots list metrics in one (sorted) order.
  for (const int threads : {1, 2, 4}) {
    MetricRegistry registry;
    Counter& hits = registry.counter("a.hits");
    registry.counter("b.misses").add(7);
    constexpr std::uint64_t kPerThread = 10'000;
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&hits] {
        for (std::uint64_t i = 0; i < kPerThread; ++i) hits.add();
      });
    }
    for (auto& t : pool) t.join();
    EXPECT_EQ(hits.get(), kPerThread * static_cast<std::uint64_t>(threads));
    const std::vector<MetricRegistry::Sample> snap = registry.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0].name, "a.hits");
    EXPECT_EQ(snap[1].name, "b.misses");
    EXPECT_DOUBLE_EQ(snap[1].value, 7.0);
  }
}

TEST(MetricRegistryTest, GaugeFnEvaluatesAtSnapshotAndFreezes) {
  MetricRegistry registry;
  int live = 41;
  registry.gauge_fn("pool.size", [&live] { return static_cast<double>(live); });
  live = 42;
  EXPECT_DOUBLE_EQ(registry.snapshot()[0].value, 42.0);
  registry.set_gauge("pool.size", 99.0);  // freeze: callback dropped
  live = 0;
  EXPECT_DOUBLE_EQ(registry.snapshot()[0].value, 99.0);
}

TEST(MetricRegistryTest, HistogramTracksCountAndMean) {
  MetricRegistry registry;
  HistogramMetric& h = registry.histogram("lbd", 0.0, 10.0, 10);
  for (const double x : {2.0, 4.0, 6.0}) h.observe(x);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
  EXPECT_DOUBLE_EQ(h.sum(), 12.0);
  const std::vector<MetricRegistry::Sample> snap = registry.snapshot();
  ASSERT_EQ(snap.size(), 6u);  // count, mean, p50, p90, p99, sum
  EXPECT_EQ(snap[0].name, "lbd.count");
  EXPECT_EQ(snap[1].name, "lbd.mean");
  EXPECT_EQ(snap[2].name, "lbd.p50");
  EXPECT_EQ(snap[3].name, "lbd.p90");
  EXPECT_EQ(snap[4].name, "lbd.p99");
  EXPECT_EQ(snap[5].name, "lbd.sum");
  EXPECT_DOUBLE_EQ(snap[5].value, 12.0);
}

TEST(MetricRegistryTest, LogBucketsResolveLatencyDecadesInQuantiles) {
  // Latency-shaped data spanning four decades: a linear histogram with
  // the same bucket budget lumps everything below the straggler into one
  // bucket; the log layout keeps the decades apart.
  HistogramMetric h(1e-4, 1e2, 48, HistogramMetric::Scale::kLog);
  for (int i = 0; i < 90; ++i) h.observe(1e-3);  // fast hops
  for (int i = 0; i < 9; ++i) h.observe(1e-1);   // slow links
  h.observe(50.0);                               // one straggler
  EXPECT_EQ(h.count(), 100u);
  const double p50 = h.quantile(0.50);
  const double p95 = h.quantile(0.95);
  const double p99 = h.quantile(0.99);
  EXPECT_GT(p50, 5e-4);
  EXPECT_LT(p50, 5e-3);  // within the fast-hop decade
  EXPECT_GT(p95, 5e-3);
  EXPECT_LT(p95, 5e-1);  // crossing into the slow-link decade
  EXPECT_GT(p99, 1e-1);  // pulled up toward the straggler
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // Out-of-range samples clamp into the edge buckets instead of vanishing.
  h.observe(0.0);
  h.observe(1e9);
  EXPECT_EQ(h.count(), 102u);
  // A log request with lo <= 0 cannot take a logarithm; the constructor
  // falls back to linear layout rather than emitting NaN buckets.
  HistogramMetric fallback(0.0, 10.0, 10, HistogramMetric::Scale::kLog);
  fallback.observe(5.0);
  EXPECT_GT(fallback.quantile(0.5), 0.0);
}

TEST(MetricRegistryTest, SnapshotToEmitsCounterEvents) {
  if (!kTraceCompiledIn) GTEST_SKIP() << "tracer compiled out";
  MetricRegistry registry;
  registry.counter("x").add(5);
  Tracer tracer(16);
  tracer.set_enabled(true);
  const std::uint32_t lane = tracer.register_worker("sampler");
  registry.snapshot_to(tracer, lane);
  const std::vector<TraceEvent> events = tracer.events(lane);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, EventKind::kCounter);
  EXPECT_EQ(tracer.interned(static_cast<std::uint32_t>(events[0].a)), "x");
  EXPECT_EQ(events[0].b, 5u);
}

// --- end-to-end: instrumented parallel solve (TSAN entry point) ------------

TEST(InstrumentedParallelTest, FourThreadSolveTracesAndCounts) {
  const cnf::CnfFormula f = gen::urquhart_like(10, 1);
  Tracer tracer(1u << 12);
  tracer.set_enabled(true);
  MetricRegistry registry;
  solver::ParallelOptions options;
  options.num_threads = 4;
  options.slice_work = 2'000;  // frequent cooperation: more events
  options.tracer = &tracer;
  options.metrics = &registry;
  solver::ParallelSolver solver(f, options);
  const solver::ParallelResult result = solver.solve();
  EXPECT_EQ(result.status, solver::SolveStatus::kUnsat);

  // The facade must agree with the registry it is read from.
  EXPECT_EQ(result.stats.total_work,
            registry.counter("parallel.total_work").get());
  EXPECT_EQ(result.stats.clauses_published,
            registry.counter("parallel.clauses_published").get());
  // Gauges were frozen before the pool died; snapshotting is safe now.
  for (const MetricRegistry::Sample& s : registry.snapshot()) {
    if (s.name == "sharing.pool_clauses") {
      EXPECT_DOUBLE_EQ(
          s.value, static_cast<double>(result.stats.clauses_published));
    }
  }

  if (!kTraceCompiledIn) return;
  EXPECT_EQ(tracer.num_workers(), 4u);
  EXPECT_GT(tracer.total_emitted(), 0u);
  bool saw_conflict = false;
  for (const TraceEvent& ev : tracer.all_events()) {
    saw_conflict |= ev.kind == EventKind::kConflict;
  }
  EXPECT_TRUE(saw_conflict);
  EXPECT_TRUE(JsonChecker(chrome_trace_json(tracer)).valid());
}

TEST(InstrumentedParallelTest, FourThreadFlowEmissionIsRaceFree) {
  // Concurrent flow-stamped message emission (the pattern the bus uses
  // when campaign lanes are driven from worker threads). Runs under the
  // TSAN matrix: four single-writer rings, shared intern table touched
  // only before the threads start.
  if (!kTraceCompiledIn) GTEST_SKIP() << "tracer compiled out";
  Tracer tracer(1u << 10);
  tracer.set_enabled(true);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 200;
  std::vector<std::uint32_t> lanes;
  lanes.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    lanes.push_back(tracer.register_worker("lane" + std::to_string(t)));
  }
  const std::uint32_t kind = tracer.intern("SUBPROBLEM");
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&tracer, &lanes, kind, t] {
      const auto base = static_cast<std::uint64_t>(t) * kPerThread;
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        const std::uint64_t flow = 1 + base + i;
        tracer.emit(lanes[static_cast<std::size_t>(t)], EventKind::kMsgSend,
                    msg_a(kind, flow), msg_b(0, 128));
        tracer.emit(lanes[static_cast<std::size_t>(t)], EventKind::kMsgRecv,
                    msg_a(kind, flow), msg_b(0, 128));
      }
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(tracer.total_emitted(), kThreads * kPerThread * 2);
  const std::string json = chrome_trace_json(tracer);
  EXPECT_TRUE(JsonChecker(json).valid());
  const AnalyzeReport report = analyze_trace(json, "");
  EXPECT_TRUE(report.ok) << report.error;  // every flow stitchable
}

TEST(InstrumentedParallelTest, ExternalRegistryReportsPerRunDeltas) {
  const cnf::CnfFormula f = gen::urquhart_like(8, 1);
  MetricRegistry registry;
  solver::ParallelOptions options;
  options.num_threads = 2;
  options.metrics = &registry;
  solver::ParallelSolver first(f, options);
  const std::uint64_t work_one = first.solve().stats.total_work;
  solver::ParallelSolver second(f, options);
  const std::uint64_t work_two = second.solve().stats.total_work;
  EXPECT_GT(work_one, 0u);
  EXPECT_GT(work_two, 0u);
  // The registry accumulates, the per-run facade does not.
  EXPECT_EQ(registry.counter("parallel.total_work").get(),
            work_one + work_two);
}

// --- gridsat_analyze --------------------------------------------------------

// A hand-written two-lane campaign trace exercising every analyzer
// input: lane metadata + site tag, the root lineage announcement, one
// flow-stitched SUBPROBLEM ship, one tenancy refuted at t=5s, and final
// counter samples from a metrics lane.
const char kGoldenTrace[] = R"({"displayTimeUnit":"ms","traceEvents":[
{"ph":"M","name":"thread_name","pid":0,"tid":0,"args":{"name":"master"}},
{"ph":"M","name":"thread_name","pid":0,"tid":1,"args":{"name":"client:node0"}},
{"ph":"M","name":"gridsat_site","pid":0,"tid":1,"args":{"site":"utk"}},
{"ph":"i","s":"t","name":"lineage-split","pid":0,"tid":0,"ts":0,"args":{"lineage":1,"branch":0,"parent":0}},
{"ph":"s","cat":"flow","id":7,"name":"SUBPROBLEM","pid":0,"tid":0,"ts":100000},
{"ph":"i","s":"t","name":"SUBPROBLEM","pid":0,"tid":0,"ts":100000,"args":{"dir":"send","peer":"client:node0","flow":7,"bytes":2048}},
{"ph":"f","bp":"e","cat":"flow","id":7,"name":"SUBPROBLEM","pid":0,"tid":1,"ts":200000},
{"ph":"i","s":"t","name":"SUBPROBLEM","pid":0,"tid":1,"ts":200000,"args":{"dir":"recv","peer":"master","flow":7,"bytes":2048}},
{"ph":"i","s":"t","name":"subproblem-start","pid":0,"tid":1,"ts":300000,"args":{"b":0}},
{"ph":"i","s":"t","name":"lineage-refute","pid":0,"tid":1,"ts":5000000,"args":{"lineage":1}},
{"ph":"i","s":"t","name":"subproblem-unsat","pid":0,"tid":1,"ts":5000000,"args":{"b":0}},
{"ph":"C","name":"campaign.imports","pid":0,"tid":2,"ts":5000000,"args":{"value":10}},
{"ph":"C","name":"campaign.imports_used","pid":0,"tid":2,"ts":5000000,"args":{"value":4}}
]})";

TEST(AnalyzeTest, GoldenReportReadsEverySection) {
  const AnalyzeReport report = analyze_trace(kGoldenTrace, "");
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_NE(report.text.find("nodes: 1  refuted leaves: 1  recoveries: 0"),
            std::string::npos)
      << report.text;
  EXPECT_NE(report.text.find(
                "critical path: 5.000s (leaf 1, depth 0) of 5.000s"),
            std::string::npos)
      << report.text;
  EXPECT_NE(report.text.find("flows: 1, all stitchable"), std::string::npos);
  // Utilization: the tenancy runs 0.3s..5.0s on node0 (site utk).
  EXPECT_NE(report.text.find("client:node0"), std::string::npos);
  EXPECT_NE(report.text.find("utk"), std::string::npos);
  // The straggler table names the flow that shipped the tenancy.
  EXPECT_NE(report.text.find("       7\n"), std::string::npos) << report.text;
  // Wire accounting counts the send side only.
  EXPECT_NE(report.text.find("SUBPROBLEM"), std::string::npos);
  EXPECT_NE(report.text.find("2048"), std::string::npos);
  // Clause-sharing usefulness from the trace's counter samples.
  EXPECT_NE(
      report.text.find("imported: 10  used in conflict analysis: 4 (40.0%)"),
      std::string::npos)
      << report.text;
}

TEST(AnalyzeTest, ReportIsByteDeterministic) {
  const AnalyzeReport one = analyze_trace(kGoldenTrace, "");
  const AnalyzeReport two = analyze_trace(kGoldenTrace, "");
  ASSERT_TRUE(one.ok);
  EXPECT_EQ(one.text, two.text);
}

TEST(AnalyzeTest, MetricsFileOverridesTraceCounters) {
  const AnalyzeReport report =
      analyze_trace(kGoldenTrace, "campaign.imports 100\ncampaign.imports_used 50\n");
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_NE(report.text.find(
                "imported: 100  used in conflict analysis: 50 (50.0%)"),
            std::string::npos)
      << report.text;
}

TEST(AnalyzeTest, RejectsMalformedAndCausallyIncompleteTraces) {
  EXPECT_FALSE(analyze_trace("{\"traceEvents\":[", "").ok);
  EXPECT_FALSE(analyze_trace("not json at all", "").ok);
  // A refuted lineage that was never announced by a split event means
  // the tree cannot be reconstructed from the trace.
  const AnalyzeReport orphan = analyze_trace(
      R"({"traceEvents":[
{"ph":"i","s":"t","name":"lineage-refute","pid":0,"tid":1,"ts":10,"args":{"lineage":9}}
]})",
      "");
  EXPECT_FALSE(orphan.ok);
  EXPECT_NE(orphan.error.find("never announced"), std::string::npos)
      << orphan.error;
  // Two flow starts under one id violate the stitching contract.
  const AnalyzeReport doubled = analyze_trace(
      R"({"traceEvents":[
{"ph":"s","cat":"flow","id":3,"name":"SUBPROBLEM","pid":0,"tid":0,"ts":1},
{"ph":"s","cat":"flow","id":3,"name":"SUBPROBLEM","pid":0,"tid":1,"ts":2}
]})",
      "");
  EXPECT_FALSE(doubled.ok);
  EXPECT_NE(doubled.error.find("unstitchable"), std::string::npos)
      << doubled.error;
}

// --- end-to-end: instrumented sim campaign ---------------------------------

TEST(InstrumentedCampaignTest, VirtualTimeTraceNamesPhasesAndMessages) {
  if (!kTraceCompiledIn) GTEST_SKIP() << "tracer compiled out";
  const cnf::CnfFormula f = gen::pigeonhole_unsat(6);
  core::GridSatConfig config;
  config.split_timeout_s = 5.0;
  config.overall_timeout_s = 100000.0;
  config.min_client_memory = 1 << 20;
  std::vector<sim::HostSpec> hosts;
  for (int i = 0; i < 3; ++i) {
    sim::HostSpec spec;
    spec.name = "node" + std::to_string(i);
    spec.site = "utk";
    spec.speed = 3000.0;
    spec.memory_bytes = 8u << 20;
    spec.seed = 7 + i;
    hosts.push_back(spec);
  }
  core::Campaign campaign(f, "utk", std::move(hosts), config);
  Tracer tracer(1u << 14, Tracer::Clock::kManual);
  tracer.set_enabled(true);
  campaign.set_tracer(&tracer);
  MetricRegistry registry;
  campaign.set_metrics(&registry);
  const core::GridSatResult result = campaign.run();
  EXPECT_EQ(result.status, core::CampaignStatus::kUnsat);

  const std::string timeline = text_timeline(tracer);
  EXPECT_NE(timeline.find("SUBPROBLEM -> client:node"), std::string::npos);
  EXPECT_NE(timeline.find("subproblem-start"), std::string::npos);
  EXPECT_NE(timeline.find("verdict-unsat"), std::string::npos);

  // Timestamps are virtual seconds: monotone in the merged drain and
  // bounded by the campaign's virtual duration.
  double prev = 0.0;
  for (const TraceEvent& ev : tracer.all_events()) {
    EXPECT_GE(ev.ts, prev);
    prev = ev.ts;
  }
  EXPECT_LE(prev, result.seconds + 1e9);  // delivery events may trail

  // Frozen campaign gauges survive the campaign object.
  bool saw_splits = false;
  for (const MetricRegistry::Sample& s : registry.snapshot()) {
    if (s.name == "campaign.splits") {
      saw_splits = true;
      EXPECT_DOUBLE_EQ(s.value, static_cast<double>(result.total_splits));
    }
  }
  EXPECT_TRUE(saw_splits);
}

TEST(InstrumentedCampaignTest, FlowAndLineageIdsAreDeterministicAcrossRuns) {
  if (!kTraceCompiledIn) GTEST_SKIP() << "tracer compiled out";
  // Two identically-seeded campaigns must allocate the same flow and
  // lineage ids in the same order (ids are allocated at protocol
  // decisions, never gated on tracing), so the stitched story — and the
  // analyzer report built from it — is byte-identical.
  const auto run_traced = [] {
    const cnf::CnfFormula f = gen::pigeonhole_unsat(6);
    core::GridSatConfig config;
    config.split_timeout_s = 5.0;
    config.overall_timeout_s = 100000.0;
    config.min_client_memory = 1 << 20;
    std::vector<sim::HostSpec> hosts;
    for (int i = 0; i < 3; ++i) {
      sim::HostSpec spec;
      spec.name = "node" + std::to_string(i);
      spec.site = i < 2 ? "utk" : "ucsd";
      spec.speed = 3000.0;
      spec.memory_bytes = 8u << 20;
      spec.seed = 7 + static_cast<std::uint64_t>(i);
      hosts.push_back(spec);
    }
    core::Campaign campaign(f, "utk", std::move(hosts), config);
    Tracer tracer(1u << 15, Tracer::Clock::kManual);
    tracer.set_enabled(true);
    campaign.set_tracer(&tracer);
    MetricRegistry registry;
    campaign.set_metrics(&registry);
    const core::GridSatResult result = campaign.run();
    EXPECT_EQ(result.status, core::CampaignStatus::kUnsat);
    registry.snapshot_to(tracer, tracer.register_worker("sampler"));
    return chrome_trace_json(tracer);
  };
  const std::string first = run_traced();
  const std::string second = run_traced();
  EXPECT_EQ(first, second);  // same flows, lineages, timestamps, counters

  const AnalyzeReport report = analyze_trace(first, "");
  ASSERT_TRUE(report.ok) << report.error;  // tree complete, flows stitch
  EXPECT_EQ(report.text, analyze_trace(second, "").text);
  EXPECT_NE(report.text.find("refuted leaves:"), std::string::npos);
  EXPECT_EQ(report.text.find("refuted leaves: 0"), std::string::npos)
      << "an UNSAT campaign must refute at least one leaf";
  EXPECT_NE(report.text.find("all stitchable"), std::string::npos);
}

}  // namespace
}  // namespace gridsat::obs
