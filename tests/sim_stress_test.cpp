// Randomized stress for the discrete-event engine: tens of thousands of
// events scheduled, cancelled, and rescheduled from inside handlers must
// fire in nondecreasing time order with exact bookkeeping — under both
// queue backends, and at a 1000-host (env-scalable) message workload.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "sim/batch.hpp"
#include "sim/engine.hpp"
#include "sim/message_bus.hpp"
#include "sim/names.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"

namespace gridsat::sim {
namespace {

class EngineStressTest : public testing::TestWithParam<QueueKind> {};

INSTANTIATE_TEST_SUITE_P(Queues, EngineStressTest,
                         testing::Values(QueueKind::kCalendar,
                                         QueueKind::kQuadHeap),
                         [](const auto& info) {
                           return info.param == QueueKind::kCalendar
                                      ? "Calendar"
                                      : "QuadHeap";
                         });

TEST_P(EngineStressTest, RandomScheduleCancelRespectsOrder) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SimEngine engine(GetParam());
    util::Xoshiro256 rng(seed);
    std::vector<double> fire_times;
    std::vector<EventId> cancellable;
    std::size_t scheduled = 0;
    std::size_t cancelled = 0;

    std::function<void()> spawn = [&] {
      fire_times.push_back(engine.now());
      // Each firing may schedule up to 3 more and cancel one pending.
      const std::size_t children = rng.below(4);
      for (std::size_t i = 0; i < children && scheduled < 20000; ++i) {
        ++scheduled;
        const EventId id =
            engine.schedule_in(rng.uniform() * 10.0, spawn);
        if (rng.chance(0.2)) cancellable.push_back(id);
      }
      if (!cancellable.empty() && rng.chance(0.3)) {
        engine.cancel(cancellable.back());
        cancellable.pop_back();
        ++cancelled;
      }
    };
    for (int i = 0; i < 50; ++i) {
      ++scheduled;
      engine.schedule_at(rng.uniform() * 5.0, spawn);
    }
    engine.run();

    EXPECT_TRUE(engine.empty()) << "seed " << seed;
    for (std::size_t i = 1; i < fire_times.size(); ++i) {
      ASSERT_GE(fire_times[i], fire_times[i - 1])
          << "time went backwards at event " << i << " seed " << seed;
    }
    // Fired + cancelled accounts for everything scheduled. (A cancel may
    // target an already-fired event; those still count as fired, so only
    // an upper bound holds for cancelled.)
    EXPECT_LE(engine.events_fired(), scheduled);
    EXPECT_GE(engine.events_fired() + cancelled, scheduled);
    EXPECT_GT(fire_times.size(), 100u) << "stress run fizzled";
  }
}

TEST_P(EngineStressTest, ManyEqualTimestampsKeepFifoOrder) {
  SimEngine engine(GetParam());
  std::vector<int> order;
  for (int i = 0; i < 5000; ++i) {
    engine.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  engine.run();
  for (int i = 0; i < 5000; ++i) {
    ASSERT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST_P(EngineStressTest, CancelStormLeavesEngineConsistent) {
  SimEngine engine(GetParam());
  std::vector<EventId> ids;
  int fired = 0;
  for (int i = 0; i < 10000; ++i) {
    ids.push_back(engine.schedule_at(static_cast<double>(i), [&] { ++fired; }));
  }
  // Cancel every other event, some twice.
  for (std::size_t i = 0; i < ids.size(); i += 2) {
    engine.cancel(ids[i]);
    engine.cancel(ids[i]);
  }
  engine.run();
  EXPECT_EQ(fired, 5000);
  EXPECT_TRUE(engine.empty());
}

/// A campaign-shaped message workload at N hosts: every host runs a
/// ~1 s quantum loop, reports to the master each quantum, and the
/// master broadcasts a clause batch to every host every 5 virtual
/// seconds. N defaults to 1000 and scales with GRIDSAT_STRESS_HOSTS
/// (CI runs this elevated under TSan).
TEST_P(EngineStressTest, SustainsElevatedHostCount) {
  std::size_t n_hosts = 1000;
  if (const char* env = std::getenv("GRIDSAT_STRESS_HOSTS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) n_hosts = static_cast<std::size_t>(parsed);
  }
  constexpr std::size_t kSites = 16;
  constexpr double kHorizon = 60.0;

  SimEngine engine(GetParam());
  NameTable names;
  Network net(names);
  MessageBus bus(engine, net);
  util::Xoshiro256 rng(42);

  const std::uint32_t master = names.intern("master");
  const std::uint32_t master_site = names.intern("site0");
  const std::uint32_t report = names.intern("REPORT");
  const std::uint32_t clauses = names.intern("CLAUSES");
  std::vector<std::uint32_t> endpoint(n_hosts);
  std::vector<std::uint32_t> site(n_hosts);
  for (std::size_t i = 0; i < n_hosts; ++i) {
    endpoint[i] = names.intern("client:g" + std::to_string(i));
    site[i] = names.intern("site" + std::to_string(i % kSites));
  }

  std::uint64_t quanta = 0;
  std::uint64_t reports = 0;
  std::uint64_t broadcast_deliveries = 0;

  std::function<void(std::size_t)> quantum = [&](std::size_t i) {
    ++quanta;
    if (engine.now() >= kHorizon) return;
    MessageHeader h;
    h.from = endpoint[i];
    h.from_site = site[i];
    h.to = master;
    h.to_site = master_site;
    h.kind = report;
    h.bytes = 96;
    bus.send(h, [&reports] { ++reports; });
    engine.schedule_in(0.8 + rng.uniform() * 0.4,
                       [&quantum, i] { quantum(i); });
  };
  std::function<void()> broadcast = [&] {
    if (engine.now() >= kHorizon) return;
    DeliveryBatch batch(bus, master, master_site, clauses, 4096);
    for (std::size_t i = 0; i < n_hosts; ++i) {
      batch.add(endpoint[i], site[i],
                [&broadcast_deliveries] { ++broadcast_deliveries; });
    }
    // All inter-site recipients share one link class: the whole storm
    // costs O(sites) queue operations, not O(hosts).
    EXPECT_LE(batch.flush(), kSites + 1);
    engine.schedule_in(5.0, broadcast);
  };

  for (std::size_t i = 0; i < n_hosts; ++i) {
    engine.schedule_at(rng.uniform() * 1.0, [&quantum, i] { quantum(i); });
  }
  engine.schedule_at(5.0, broadcast);
  engine.run();

  EXPECT_GE(engine.now(), kHorizon - 1.0);
  // Every host ticked for the whole horizon (~60 quanta each).
  EXPECT_GE(quanta, n_hosts * 40);
  EXPECT_GE(broadcast_deliveries, 11 * n_hosts);
  // Broadcast deliveries ride shared group events: total engine events
  // is quanta + reports + the broadcast scheduler ticks + at most
  // (sites + 1) group events per broadcast — NOT one per delivery.
  EXPECT_GE(engine.events_fired(), quanta + reports);
  EXPECT_LE(engine.events_fired(),
            quanta + reports + 13 * (kSites + 2));
  // Slab stays bounded by peak concurrency (one quantum + a few
  // in-flight messages per host), not by the million-ish total events.
  EXPECT_LE(engine.slab_slots(), 4 * n_hosts + 64);
  EXPECT_GT(bus.messages_sent(), quanta);
}

}  // namespace
}  // namespace gridsat::sim
