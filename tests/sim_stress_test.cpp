// Randomized stress for the discrete-event engine: tens of thousands of
// events scheduled, cancelled, and rescheduled from inside handlers must
// fire in nondecreasing time order with exact bookkeeping.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace gridsat::sim {
namespace {

TEST(EngineStressTest, RandomScheduleCancelRespectsOrder) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SimEngine engine;
    util::Xoshiro256 rng(seed);
    std::vector<double> fire_times;
    std::vector<EventId> cancellable;
    std::size_t scheduled = 0;
    std::size_t cancelled = 0;

    std::function<void()> spawn = [&] {
      fire_times.push_back(engine.now());
      // Each firing may schedule up to 3 more and cancel one pending.
      const std::size_t children = rng.below(4);
      for (std::size_t i = 0; i < children && scheduled < 20000; ++i) {
        ++scheduled;
        const EventId id =
            engine.schedule_in(rng.uniform() * 10.0, spawn);
        if (rng.chance(0.2)) cancellable.push_back(id);
      }
      if (!cancellable.empty() && rng.chance(0.3)) {
        engine.cancel(cancellable.back());
        cancellable.pop_back();
        ++cancelled;
      }
    };
    for (int i = 0; i < 50; ++i) {
      ++scheduled;
      engine.schedule_at(rng.uniform() * 5.0, spawn);
    }
    engine.run();

    EXPECT_TRUE(engine.empty()) << "seed " << seed;
    for (std::size_t i = 1; i < fire_times.size(); ++i) {
      ASSERT_GE(fire_times[i], fire_times[i - 1])
          << "time went backwards at event " << i << " seed " << seed;
    }
    // Fired + cancelled accounts for everything scheduled. (A cancel may
    // target an already-fired event; those still count as fired, so only
    // an upper bound holds for cancelled.)
    EXPECT_LE(engine.events_fired(), scheduled);
    EXPECT_GE(engine.events_fired() + cancelled, scheduled);
    EXPECT_GT(fire_times.size(), 100u) << "stress run fizzled";
  }
}

TEST(EngineStressTest, ManyEqualTimestampsKeepFifoOrder) {
  SimEngine engine;
  std::vector<int> order;
  for (int i = 0; i < 5000; ++i) {
    engine.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  engine.run();
  for (int i = 0; i < 5000; ++i) {
    ASSERT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(EngineStressTest, CancelStormLeavesEngineConsistent) {
  SimEngine engine;
  std::vector<EventId> ids;
  int fired = 0;
  for (int i = 0; i < 10000; ++i) {
    ids.push_back(engine.schedule_at(static_cast<double>(i), [&] { ++fired; }));
  }
  // Cancel every other event, some twice.
  for (std::size_t i = 0; i < ids.size(); i += 2) {
    engine.cancel(ids[i]);
    engine.cancel(ids[i]);
  }
  engine.run();
  EXPECT_EQ(fired, 5000);
  EXPECT_TRUE(engine.empty());
}

}  // namespace
}  // namespace gridsat::sim
