// Tests for the discrete-event substrate: engine ordering/cancellation,
// host load traces, network transfer arithmetic, message bus accounting,
// and the batch-queue (Blue Horizon) model.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/batch.hpp"
#include "sim/engine.hpp"
#include "sim/host.hpp"
#include "sim/message_bus.hpp"
#include "sim/network.hpp"

namespace gridsat::sim {
namespace {

TEST(EngineTest, FiresInTimeOrder) {
  SimEngine engine;
  std::vector<int> order;
  engine.schedule_at(3.0, [&] { order.push_back(3); });
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  engine.schedule_at(2.0, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
  EXPECT_EQ(engine.events_fired(), 3u);
}

TEST(EngineTest, TiesFireInSchedulingOrder) {
  SimEngine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  engine.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EngineTest, RelativeScheduling) {
  SimEngine engine;
  double fired_at = -1;
  engine.schedule_at(2.0, [&] {
    engine.schedule_in(3.0, [&] { fired_at = engine.now(); });
  });
  engine.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(EngineTest, CancelPreventsFiring) {
  SimEngine engine;
  bool fired = false;
  const EventId id = engine.schedule_at(1.0, [&] { fired = true; });
  engine.cancel(id);
  engine.run();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(engine.empty());
  engine.cancel(id);  // double-cancel is a no-op
}

TEST(EngineTest, RunUntilStopsBeforeLaterEvents) {
  SimEngine engine;
  std::vector<double> fired;
  engine.schedule_at(1.0, [&] { fired.push_back(1.0); });
  engine.schedule_at(2.0, [&] { fired.push_back(2.0); });
  engine.schedule_at(10.0, [&] { fired.push_back(10.0); });
  engine.run_until(2.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(engine.now(), 2.0);
  EXPECT_EQ(engine.pending(), 1u);
}

TEST(EngineTest, PastTimesClampToNow) {
  SimEngine engine;
  double fired_at = -1;
  engine.schedule_at(5.0, [&] {
    engine.schedule_at(1.0, [&] { fired_at = engine.now(); });
  });
  engine.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(EngineTest, EventsScheduledDuringRunAreProcessed) {
  SimEngine engine;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 100) engine.schedule_in(1.0, chain);
  };
  engine.schedule_at(0.0, chain);
  engine.run();
  EXPECT_EQ(count, 100);
  EXPECT_DOUBLE_EQ(engine.now(), 99.0);
}

TEST(HostTest, DedicatedHostAlwaysFullSpeed) {
  HostSpec spec;
  spec.speed = 1000.0;
  Host host(spec);
  for (double t : {0.0, 100.0, 10000.0}) {
    EXPECT_DOUBLE_EQ(host.effective_speed(t), 1000.0);
  }
}

TEST(HostTest, SharedHostFluctuatesAroundTarget) {
  HostSpec spec;
  spec.speed = 1000.0;
  spec.base_load = 0.3;
  spec.load_jitter = 0.1;
  spec.seed = 7;
  Host host(spec);
  double sum = 0;
  const int samples = 200;
  for (int i = 0; i < samples; ++i) {
    const double a = host.availability(i * Host::kSegmentSeconds);
    EXPECT_GE(a, Host::kMinAvailability);
    EXPECT_LE(a, 1.0);
    sum += a;
  }
  EXPECT_NEAR(sum / samples, 0.7, 0.1);
}

TEST(HostTest, TraceIsDeterministicAndStable) {
  HostSpec spec;
  spec.base_load = 0.2;
  spec.load_jitter = 0.15;
  spec.seed = 42;
  Host a(spec);
  Host b(spec);
  // Query out of order; values must match a fresh in-order host.
  const double v1 = a.availability(600.0);
  const double v2 = a.availability(0.0);
  EXPECT_DOUBLE_EQ(b.availability(0.0), v2);
  EXPECT_DOUBLE_EQ(b.availability(600.0), v1);
  EXPECT_DOUBLE_EQ(a.availability(600.0), v1);  // stable on re-query
}

TEST(NetworkTest, IntraVersusInterSite) {
  Network net;
  const double intra = net.transfer_time(1024 * 1024, "utk", "utk");
  const double inter = net.transfer_time(1024 * 1024, "utk", "ucsd");
  EXPECT_LT(intra, inter);
}

TEST(NetworkTest, TransferTimeArithmetic) {
  Network net;
  LinkSpec link;
  link.latency_s = 0.5;
  link.bandwidth_bps = 1000.0;
  net.set_link("a", "b", link);
  EXPECT_DOUBLE_EQ(net.transfer_time(2000, "a", "b"), 0.5 + 2.0);
  EXPECT_DOUBLE_EQ(net.transfer_time(2000, "b", "a"), 0.5 + 2.0);
}

TEST(NetworkTest, LoopbackIsCheap) {
  Network net;
  EXPECT_LT(net.transfer_time(100 * 1024 * 1024, "x", "x", true), 0.001);
}

TEST(NetworkTest, BigSubproblemTransferDominates) {
  // The paper's split payloads reach 100s of MBytes; over the wide area
  // they must cost minutes, not milliseconds.
  Network net;
  const double t = net.transfer_time(200 * 1024 * 1024, "utk", "ucsd");
  EXPECT_GT(t, 60.0);
}

TEST(MessageBusTest, DeliversAfterTransferTime) {
  SimEngine engine;
  Network net;
  MessageBus bus(engine, net);
  LinkSpec link;
  link.latency_s = 1.0;
  link.bandwidth_bps = 100.0;
  net.set_link("a", "b", link);
  double delivered_at = -1;
  MessageRecord header;
  header.from = "x";
  header.from_site = "a";
  header.to = "y";
  header.to_site = "b";
  header.kind = "TEST";
  header.bytes = 300;
  const double delay = bus.send(header, [&] { delivered_at = engine.now(); });
  EXPECT_DOUBLE_EQ(delay, 4.0);
  engine.run();
  EXPECT_DOUBLE_EQ(delivered_at, 4.0);
  EXPECT_EQ(bus.messages_sent(), 1u);
  EXPECT_EQ(bus.bytes_sent(), 300u);
}

TEST(MessageBusTest, TraceRecordsProtocol) {
  SimEngine engine;
  Network net;
  MessageBus bus(engine, net);
  bus.enable_trace();
  MessageRecord header;
  header.from = "client:a";
  header.from_site = "utk";
  header.to = "master";
  header.to_site = "ucsd";
  header.kind = "SPLIT_REQUEST";
  header.bytes = 96;
  bus.send(header, [] {});
  engine.run();
  ASSERT_EQ(bus.trace().size(), 1u);
  EXPECT_EQ(bus.trace()[0].kind, "SPLIT_REQUEST");
  EXPECT_GT(bus.trace()[0].delivered_at, bus.trace()[0].sent_at);
}

TEST(BatchTest, JobWaitsThenStarts) {
  SimEngine engine;
  BatchSystemSpec spec;
  spec.mean_queue_wait_s = 100.0;
  spec.seed = 3;
  BatchSystem batch(engine, spec);
  double started_at = -1;
  BatchJobRequest request;
  request.max_duration_s = 50.0;
  request.on_start = [&] { started_at = engine.now(); };
  const auto job = batch.submit(std::move(request));
  engine.run();
  EXPECT_GE(started_at, 50.0);  // wait >= half the mean
  EXPECT_DOUBLE_EQ(batch.queue_wait(job), 0.0);  // job gone after expiry
}

TEST(BatchTest, ExpiryFires) {
  SimEngine engine;
  BatchSystemSpec spec;
  spec.mean_queue_wait_s = 10.0;
  BatchSystem batch(engine, spec);
  double started_at = -1;
  double expired_at = -1;
  BatchJobRequest request;
  request.max_duration_s = 20.0;
  request.on_start = [&] { started_at = engine.now(); };
  request.on_expire = [&] { expired_at = engine.now(); };
  batch.submit(std::move(request));
  engine.run();
  ASSERT_GE(started_at, 0.0);
  EXPECT_DOUBLE_EQ(expired_at, started_at + 20.0);
}

TEST(BatchTest, CancelBeforeStartSuppressesJob) {
  SimEngine engine;
  BatchSystemSpec spec;
  spec.mean_queue_wait_s = 100.0;
  BatchSystem batch(engine, spec);
  bool started = false;
  BatchJobRequest request;
  request.on_start = [&] { started = true; };
  const auto job = batch.submit(std::move(request));
  batch.cancel(job);
  engine.run();
  EXPECT_FALSE(started);
}

TEST(BatchTest, CancelWhileRunningSkipsExpireCallback) {
  SimEngine engine;
  BatchSystemSpec spec;
  spec.mean_queue_wait_s = 10.0;
  BatchSystem batch(engine, spec);
  bool expired = false;
  BatchJobRequest request;
  request.max_duration_s = 1000.0;
  request.on_expire = [&] { expired = true; };
  const auto job = batch.submit(std::move(request));
  // Cancel shortly after it starts.
  engine.schedule_at(60.0, [&] {
    if (batch.running(job)) batch.cancel(job);
  });
  engine.run();
  EXPECT_FALSE(expired);
}

TEST(BatchTest, QueueWaitsAreSeededAndSpread) {
  SimEngine engine;
  BatchSystemSpec spec;
  spec.mean_queue_wait_s = 33.0 * 3600.0;
  spec.seed = 11;
  BatchSystem batch(engine, spec);
  std::vector<double> waits;
  for (int i = 0; i < 20; ++i) {
    const double submitted = engine.now();
    double start = -1;
    BatchJobRequest request;
    request.max_duration_s = 1.0;
    request.on_start = [&engine, &start] { start = engine.now(); };
    batch.submit(std::move(request));
    engine.run();
    waits.push_back(start - submitted);
  }
  // All waits at least half the mean; they differ (stochastic queue).
  double min_wait = waits[0];
  double max_wait = waits[0];
  for (const double w : waits) {
    EXPECT_GE(w, 0.5 * spec.mean_queue_wait_s - 1.0);
    min_wait = std::min(min_wait, w);
    max_wait = std::max(max_wait, w);
  }
  EXPECT_GT(max_wait - min_wait, 3600.0);
}

}  // namespace
}  // namespace gridsat::sim
