// Tests for the discrete-event substrate: engine ordering/cancellation,
// event-id generation checks, queue-kind equivalence, callback storage,
// name interning, host load traces, network transfer arithmetic, message
// bus accounting and fan-out batching, and the batch-queue (Blue
// Horizon) model.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/batch.hpp"
#include "sim/callback.hpp"
#include "sim/engine.hpp"
#include "sim/host.hpp"
#include "sim/message_bus.hpp"
#include "sim/names.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"

namespace gridsat::sim {
namespace {

TEST(EngineTest, FiresInTimeOrder) {
  SimEngine engine;
  std::vector<int> order;
  engine.schedule_at(3.0, [&] { order.push_back(3); });
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  engine.schedule_at(2.0, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
  EXPECT_EQ(engine.events_fired(), 3u);
}

TEST(EngineTest, TiesFireInSchedulingOrder) {
  SimEngine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  engine.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EngineTest, RelativeScheduling) {
  SimEngine engine;
  double fired_at = -1;
  engine.schedule_at(2.0, [&] {
    engine.schedule_in(3.0, [&] { fired_at = engine.now(); });
  });
  engine.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(EngineTest, CancelPreventsFiring) {
  SimEngine engine;
  bool fired = false;
  const EventId id = engine.schedule_at(1.0, [&] { fired = true; });
  engine.cancel(id);
  engine.run();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(engine.empty());
  engine.cancel(id);  // double-cancel is a no-op
}

TEST(EngineTest, RunUntilStopsBeforeLaterEvents) {
  SimEngine engine;
  std::vector<double> fired;
  engine.schedule_at(1.0, [&] { fired.push_back(1.0); });
  engine.schedule_at(2.0, [&] { fired.push_back(2.0); });
  engine.schedule_at(10.0, [&] { fired.push_back(10.0); });
  engine.run_until(2.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(engine.now(), 2.0);
  EXPECT_EQ(engine.pending(), 1u);
}

TEST(EngineTest, PastTimesClampToNow) {
  SimEngine engine;
  double fired_at = -1;
  engine.schedule_at(5.0, [&] {
    engine.schedule_at(1.0, [&] { fired_at = engine.now(); });
  });
  engine.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(EngineTest, EventsScheduledDuringRunAreProcessed) {
  SimEngine engine;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 100) engine.schedule_in(1.0, chain);
  };
  engine.schedule_at(0.0, chain);
  engine.run();
  EXPECT_EQ(count, 100);
  EXPECT_DOUBLE_EQ(engine.now(), 99.0);
}

TEST(EngineTest, RunUntilAdvancesClockToDeadline) {
  SimEngine engine;
  engine.schedule_at(1.0, [] {});
  engine.run_until(7.5);  // deadline past the last event
  EXPECT_DOUBLE_EQ(engine.now(), 7.5);
  engine.run_until(7.5);  // idempotent on an empty queue
  EXPECT_DOUBLE_EQ(engine.now(), 7.5);
}

TEST(EngineTest, CancelAfterFireIsNoOpDespiteSlotReuse) {
  SimEngine engine;
  bool survivor_fired = false;
  const EventId stale = engine.schedule_at(1.0, [] {});
  engine.run();  // `stale` fires; its slot returns to the free list
  // The survivor recycles the same slot but carries a new generation.
  const EventId survivor =
      engine.schedule_at(2.0, [&] { survivor_fired = true; });
  EXPECT_EQ(stale & 0xffffffffu, survivor & 0xffffffffu);  // same slot
  EXPECT_NE(stale, survivor);                              // new generation
  engine.cancel(stale);  // must NOT kill the survivor
  engine.run();
  EXPECT_TRUE(survivor_fired);
}

TEST(EngineTest, CancelDuringFireIsNoOp) {
  SimEngine engine;
  EventId self = kNoEvent;
  bool later_fired = false;
  self = engine.schedule_at(1.0, [&] {
    engine.cancel(self);  // cancelling the event being fired
    engine.schedule_in(1.0, [&] { later_fired = true; });
  });
  engine.run();
  EXPECT_TRUE(later_fired);
  EXPECT_EQ(engine.events_fired(), 2u);
}

TEST(EngineTest, SlabBoundedByPeakConcurrency) {
  SimEngine engine;
  // A long sequential chain keeps at most two events pending at once, so
  // the slab must stay tiny no matter how many events ever fire.
  std::function<void()> chain;
  int count = 0;
  chain = [&] {
    if (++count < 5000) engine.schedule_in(1.0, chain);
  };
  engine.schedule_at(0.0, chain);
  engine.run();
  EXPECT_EQ(count, 5000);
  EXPECT_LE(engine.slab_slots(), 4u);
}

/// Drives a randomized 10k-event workload (fan-out, nested scheduling,
/// sporadic cancellation) and fingerprints the firing order.
std::vector<double> replay_fingerprint(QueueKind kind, std::uint64_t seed) {
  SimEngine engine(kind);
  util::Xoshiro256 rng(seed);
  std::vector<double> trace;
  int budget = 10000;
  std::function<void(int)> spawn = [&](int tag) {
    trace.push_back(engine.now());
    trace.push_back(static_cast<double>(tag));
    if (budget <= 0) return;
    const int fan = static_cast<int>(rng.below(4));
    EventId last = kNoEvent;
    for (int i = 0; i < fan && budget > 0; ++i) {
      --budget;
      const int child = tag * 10 + i;
      last = engine.schedule_in(rng.uniform(0.0, 50.0),
                                [&spawn, child] { spawn(child); });
    }
    if (last != kNoEvent && rng.below(8) == 0) engine.cancel(last);
  };
  for (int root = 0; root < 32; ++root) {
    --budget;
    engine.schedule_at(rng.uniform(0.0, 10.0),
                       [&spawn, root] { spawn(root); });
  }
  engine.run();
  return trace;
}

TEST(EngineTest, TenThousandEventReplayIsDeterministic) {
  const auto first = replay_fingerprint(QueueKind::kCalendar, 99);
  const auto second = replay_fingerprint(QueueKind::kCalendar, 99);
  EXPECT_GT(first.size(), 10000u);
  EXPECT_EQ(first, second);
}

TEST(EngineTest, QueueKindsFireIdentically) {
  // The calendar queue and the 4-ary heap order by the same
  // (time, sequence) key, so a workload replays bit-for-bit across them.
  for (const std::uint64_t seed : {7u, 21u, 1003u}) {
    EXPECT_EQ(replay_fingerprint(QueueKind::kCalendar, seed),
              replay_fingerprint(QueueKind::kQuadHeap, seed))
        << "seed " << seed;
  }
}

TEST(CallbackTest, InlineCaptureAvoidsHeap) {
  struct SmallFn {
    int* p;
    void operator()() const { ++*p; }
  };
  struct BigFn {
    double payload[16];
    void operator()() const {}
  };
  static_assert(Callback::fits_inline<SmallFn>());
  static_assert(!Callback::fits_inline<BigFn>());
  int hits = 0;
  Callback cb(SmallFn{&hits});
  ASSERT_TRUE(cb);
  cb();
  EXPECT_EQ(hits, 1);
  Callback moved = std::move(cb);
  moved();
  EXPECT_EQ(hits, 2);
}

TEST(CallbackTest, OversizedCaptureFallsBackToHeap) {
  struct Big {
    double payload[16] = {};  // 128 bytes: over the inline buffer
  };
  Big big;
  big.payload[7] = 42.0;
  double seen = 0.0;
  double* out = &seen;
  Callback cb([big, out] { *out = big.payload[7]; });
  Callback moved = std::move(cb);
  EXPECT_FALSE(cb);  // NOLINT(bugprone-use-after-move): moved-from is empty
  moved();
  EXPECT_DOUBLE_EQ(seen, 42.0);
}

TEST(CallbackTest, DestroysCaptureExactlyOnce) {
  auto token = std::make_shared<int>(5);
  std::weak_ptr<int> watch = token;
  {
    Callback cb([token = std::move(token)] { (void)token; });
    Callback moved = std::move(cb);
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

TEST(HostTest, DedicatedHostAlwaysFullSpeed) {
  HostSpec spec;
  spec.speed = 1000.0;
  Host host(spec);
  for (double t : {0.0, 100.0, 10000.0}) {
    EXPECT_DOUBLE_EQ(host.effective_speed(t), 1000.0);
  }
}

TEST(HostTest, SharedHostFluctuatesAroundTarget) {
  HostSpec spec;
  spec.speed = 1000.0;
  spec.base_load = 0.3;
  spec.load_jitter = 0.1;
  spec.seed = 7;
  Host host(spec);
  double sum = 0;
  const int samples = 200;
  for (int i = 0; i < samples; ++i) {
    const double a = host.availability(i * Host::kSegmentSeconds);
    EXPECT_GE(a, Host::kMinAvailability);
    EXPECT_LE(a, 1.0);
    sum += a;
  }
  EXPECT_NEAR(sum / samples, 0.7, 0.1);
}

TEST(HostTest, TraceIsDeterministicAndStable) {
  HostSpec spec;
  spec.base_load = 0.2;
  spec.load_jitter = 0.15;
  spec.seed = 42;
  Host a(spec);
  Host b(spec);
  // Query out of order; values must match a fresh in-order host.
  const double v1 = a.availability(600.0);
  const double v2 = a.availability(0.0);
  EXPECT_DOUBLE_EQ(b.availability(0.0), v2);
  EXPECT_DOUBLE_EQ(b.availability(600.0), v1);
  EXPECT_DOUBLE_EQ(a.availability(600.0), v1);  // stable on re-query
}

TEST(NetworkTest, IntraVersusInterSite) {
  NameTable names;
  Network net(names);
  const double intra = net.transfer_time(1024 * 1024, "utk", "utk");
  const double inter = net.transfer_time(1024 * 1024, "utk", "ucsd");
  EXPECT_LT(intra, inter);
}

TEST(NetworkTest, TransferTimeArithmetic) {
  NameTable names;
  Network net(names);
  LinkSpec link;
  link.latency_s = 0.5;
  link.bandwidth_bps = 1000.0;
  net.set_link("a", "b", link);
  EXPECT_DOUBLE_EQ(net.transfer_time(2000, "a", "b"), 0.5 + 2.0);
  EXPECT_DOUBLE_EQ(net.transfer_time(2000, "b", "a"), 0.5 + 2.0);
}

TEST(NetworkTest, LoopbackIsCheap) {
  NameTable names;
  Network net(names);
  EXPECT_LT(net.transfer_time(100 * 1024 * 1024, "x", "x", true), 0.001);
}

TEST(NetworkTest, BigSubproblemTransferDominates) {
  // The paper's split payloads reach 100s of MBytes; over the wide area
  // they must cost minutes, not milliseconds.
  NameTable names;
  Network net(names);
  const double t = net.transfer_time(200 * 1024 * 1024, "utk", "ucsd");
  EXPECT_GT(t, 60.0);
}

TEST(NetworkTest, IdAndStringOverloadsAgree) {
  NameTable names;
  Network net(names);
  LinkSpec link;
  link.latency_s = 0.25;
  link.bandwidth_bps = 4096.0;
  net.set_link("utk", "ucsd", link);
  const std::uint32_t utk = names.lookup("utk");
  const std::uint32_t ucsd = names.lookup("ucsd");
  ASSERT_NE(utk, NameTable::kInvalid);
  ASSERT_NE(ucsd, NameTable::kInvalid);
  EXPECT_DOUBLE_EQ(net.transfer_time(8192, "utk", "ucsd"),
                   net.transfer_time(8192, utk, ucsd));
  // Same-name but never-interned sites still read as intra-site.
  EXPECT_DOUBLE_EQ(net.transfer_time(1000, "ghost", "ghost"),
                   net.transfer_time(1000, utk, utk));
}

TEST(NameTableTest, InternIsIdempotentAndDense) {
  NameTable names;
  const std::uint32_t a = names.intern("alpha");
  const std::uint32_t b = names.intern("beta");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(names.intern("alpha"), a);
  EXPECT_EQ(names.lookup("beta"), b);
  EXPECT_EQ(names.lookup("gamma"), NameTable::kInvalid);
  EXPECT_EQ(names.name(a), "alpha");
  EXPECT_EQ(names.size(), 2u);
}

TEST(MessageBusTest, DeliversAfterTransferTime) {
  SimEngine engine;
  NameTable names;
  Network net(names);
  MessageBus bus(engine, net);
  LinkSpec link;
  link.latency_s = 1.0;
  link.bandwidth_bps = 100.0;
  net.set_link("a", "b", link);
  double delivered_at = -1;
  const double delay = bus.send("x", "a", "y", "b", "TEST", 300,
                                [&] { delivered_at = engine.now(); });
  EXPECT_DOUBLE_EQ(delay, 4.0);
  engine.run();
  EXPECT_DOUBLE_EQ(delivered_at, 4.0);
  EXPECT_EQ(bus.messages_sent(), 1u);
  EXPECT_EQ(bus.bytes_sent(), 300u);
}

TEST(MessageBusTest, TraceRecordsProtocol) {
  SimEngine engine;
  NameTable names;
  Network net(names);
  MessageBus bus(engine, net);
  bus.enable_trace();
  bus.send("client:a", "utk", "master", "ucsd", "SPLIT_REQUEST", 96, [] {});
  engine.run();
  ASSERT_EQ(bus.trace().size(), 1u);
  EXPECT_EQ(bus.trace()[0].kind, "SPLIT_REQUEST");
  EXPECT_EQ(bus.trace()[0].from, "client:a");
  EXPECT_EQ(bus.trace()[0].to, "master");
  EXPECT_GT(bus.trace()[0].delivered_at, bus.trace()[0].sent_at);
}

TEST(MessageBusTest, TraceRecordsOnlyWhenEnabled) {
  SimEngine engine;
  NameTable names;
  Network net(names);
  MessageBus bus(engine, net);
  bus.send("x", "a", "y", "b", "TEST", 10, [] {});
  engine.run();
  EXPECT_TRUE(bus.trace().empty());
  EXPECT_EQ(bus.messages_sent(), 1u);  // counters still accrue
}

TEST(MessageBusTest, SendMultiGroupsByLinkClass) {
  SimEngine engine;
  NameTable names;
  Network net(names);
  MessageBus bus(engine, net);
  const std::uint32_t master = names.intern("master");
  const std::uint32_t utk = names.intern("utk");
  const std::uint32_t ucsd = names.intern("ucsd");
  std::vector<int> order;
  std::vector<MessageBus::Recipient> to;
  // Two intra-site recipients share one link class, one inter-site.
  to.push_back({names.intern("c0"), utk, Callback([&] { order.push_back(0); })});
  to.push_back({names.intern("c1"), ucsd,
                Callback([&] { order.push_back(1); })});
  to.push_back({names.intern("c2"), utk, Callback([&] { order.push_back(2); })});
  const std::size_t events =
      bus.send_multi(master, utk, names.intern("CLAUSES"), 4096,
                     std::move(to));
  EXPECT_EQ(events, 2u);  // one per distinct transfer time
  EXPECT_EQ(bus.messages_sent(), 3u);  // accounting stays per-recipient
  EXPECT_EQ(bus.bytes_sent(), 3u * 4096u);
  engine.run();
  // Intra-site group (faster link) first, recipient order inside it.
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
}

TEST(MessageBusTest, DeliveryBatchFlushesAndIsReusable) {
  SimEngine engine;
  NameTable names;
  Network net(names);
  MessageBus bus(engine, net);
  const std::uint32_t utk = names.intern("utk");
  int delivered = 0;
  DeliveryBatch batch(bus, names.intern("master"), utk,
                      names.intern("CLAUSES"), 128);
  EXPECT_EQ(batch.flush(), 0u);  // empty flush schedules nothing
  for (int i = 0; i < 5; ++i) {
    batch.add(names.intern("c" + std::to_string(i)), utk,
              [&] { ++delivered; });
  }
  EXPECT_EQ(batch.size(), 5u);
  EXPECT_EQ(batch.flush(), 1u);  // same link class: one engine event
  EXPECT_EQ(batch.size(), 0u);
  batch.add(names.intern("c0"), utk, [&] { ++delivered; });
  EXPECT_EQ(batch.flush(), 1u);
  engine.run();
  EXPECT_EQ(delivered, 6);
}

TEST(BatchTest, JobWaitsThenStarts) {
  SimEngine engine;
  BatchSystemSpec spec;
  spec.mean_queue_wait_s = 100.0;
  spec.seed = 3;
  BatchSystem batch(engine, spec);
  double started_at = -1;
  BatchJobRequest request;
  request.max_duration_s = 50.0;
  request.on_start = [&] { started_at = engine.now(); };
  const auto job = batch.submit(std::move(request));
  engine.run();
  EXPECT_GE(started_at, 50.0);  // wait >= half the mean
  EXPECT_DOUBLE_EQ(batch.queue_wait(job), 0.0);  // job gone after expiry
}

TEST(BatchTest, ExpiryFires) {
  SimEngine engine;
  BatchSystemSpec spec;
  spec.mean_queue_wait_s = 10.0;
  BatchSystem batch(engine, spec);
  double started_at = -1;
  double expired_at = -1;
  BatchJobRequest request;
  request.max_duration_s = 20.0;
  request.on_start = [&] { started_at = engine.now(); };
  request.on_expire = [&] { expired_at = engine.now(); };
  batch.submit(std::move(request));
  engine.run();
  ASSERT_GE(started_at, 0.0);
  EXPECT_DOUBLE_EQ(expired_at, started_at + 20.0);
}

TEST(BatchTest, CancelBeforeStartSuppressesJob) {
  SimEngine engine;
  BatchSystemSpec spec;
  spec.mean_queue_wait_s = 100.0;
  BatchSystem batch(engine, spec);
  bool started = false;
  BatchJobRequest request;
  request.on_start = [&] { started = true; };
  const auto job = batch.submit(std::move(request));
  batch.cancel(job);
  engine.run();
  EXPECT_FALSE(started);
}

TEST(BatchTest, CancelWhileRunningSkipsExpireCallback) {
  SimEngine engine;
  BatchSystemSpec spec;
  spec.mean_queue_wait_s = 10.0;
  BatchSystem batch(engine, spec);
  bool expired = false;
  BatchJobRequest request;
  request.max_duration_s = 1000.0;
  request.on_expire = [&] { expired = true; };
  const auto job = batch.submit(std::move(request));
  // Cancel shortly after it starts.
  engine.schedule_at(60.0, [&] {
    if (batch.running(job)) batch.cancel(job);
  });
  engine.run();
  EXPECT_FALSE(expired);
}

TEST(BatchTest, QueueWaitsAreSeededAndSpread) {
  SimEngine engine;
  BatchSystemSpec spec;
  spec.mean_queue_wait_s = 33.0 * 3600.0;
  spec.seed = 11;
  BatchSystem batch(engine, spec);
  std::vector<double> waits;
  for (int i = 0; i < 20; ++i) {
    const double submitted = engine.now();
    double start = -1;
    BatchJobRequest request;
    request.max_duration_s = 1.0;
    request.on_start = [&engine, &start] { start = engine.now(); };
    batch.submit(std::move(request));
    engine.run();
    waits.push_back(start - submitted);
  }
  // All waits at least half the mean; they differ (stochastic queue).
  double min_wait = waits[0];
  double max_wait = waits[0];
  for (const double w : waits) {
    EXPECT_GE(w, 0.5 * spec.mean_queue_wait_s - 1.0);
    min_wait = std::min(min_wait, w);
    max_wait = std::max(max_wait, w);
  }
  EXPECT_GT(max_wait - min_wait, 3600.0);
}

}  // namespace
}  // namespace gridsat::sim
