// Direct unit tests for the clause arena: allocation layout, byte
// accounting, deletion/garbage collection with remapping, activity
// storage, and iteration.
#include <gtest/gtest.h>

#include <vector>

#include "solver/clause_arena.hpp"

namespace gridsat::solver {
namespace {

using cnf::Lit;

std::vector<Lit> lits(std::initializer_list<int> dimacs) {
  std::vector<Lit> out;
  for (const int d : dimacs) out.push_back(Lit::from_dimacs(d));
  return out;
}

TEST(ClauseArenaTest, AllocAndReadBack) {
  ClauseArena arena;
  const auto c = lits({1, -2, 3});
  const ClauseRef r = arena.alloc(c, /*learned=*/false);
  EXPECT_EQ(arena.size(r), 3u);
  EXPECT_FALSE(arena.learned(r));
  EXPECT_FALSE(arena.deleted(r));
  EXPECT_EQ(arena.lit(r, 0), Lit::from_dimacs(1));
  EXPECT_EQ(arena.lit(r, 1), Lit::from_dimacs(-2));
  EXPECT_EQ(arena.lit(r, 2), Lit::from_dimacs(3));
  const auto span = arena.lits(r);
  EXPECT_EQ(span.size(), 3u);
  EXPECT_EQ(arena.num_problem(), 1u);
  EXPECT_EQ(arena.num_learned(), 0u);
}

TEST(ClauseArenaTest, ByteAccounting) {
  ClauseArena arena;
  const ClauseRef a = arena.alloc(lits({1, 2}), false);
  const std::size_t after_one = arena.live_bytes();
  EXPECT_EQ(after_one, (ClauseArena::kHeaderWords + 2) * 4);
  const ClauseRef b = arena.alloc(lits({1, 2, 3, 4}), true);
  EXPECT_EQ(arena.live_bytes(), after_one + (ClauseArena::kHeaderWords + 4) * 4);
  arena.free(a);
  EXPECT_EQ(arena.live_bytes(), (ClauseArena::kHeaderWords + 4) * 4);
  EXPECT_EQ(arena.garbage_bytes(), after_one);
  EXPECT_TRUE(arena.deleted(a));
  EXPECT_FALSE(arena.deleted(b));
}

TEST(ClauseArenaTest, SwapAndSetLits) {
  ClauseArena arena;
  const ClauseRef r = arena.alloc(lits({1, 2, 3}), false);
  arena.swap_lits(r, 0, 2);
  EXPECT_EQ(arena.lit(r, 0), Lit::from_dimacs(3));
  EXPECT_EQ(arena.lit(r, 2), Lit::from_dimacs(1));
  arena.set_lit(r, 1, Lit::from_dimacs(-5));
  EXPECT_EQ(arena.lit(r, 1), Lit::from_dimacs(-5));
}

TEST(ClauseArenaTest, ActivityRoundTrip) {
  ClauseArena arena;
  const ClauseRef r = arena.alloc(lits({1, 2}), true);
  EXPECT_FLOAT_EQ(arena.activity(r), 0.0f);
  arena.set_activity(r, 3.5f);
  EXPECT_FLOAT_EQ(arena.activity(r), 3.5f);
}

TEST(ClauseArenaTest, LbdDefaultsToSizeAndRoundTrips) {
  ClauseArena arena;
  const ClauseRef r = arena.alloc(lits({1, 2, 3, 4}), true);
  // Pessimistic default: LBD == clause length until analyze() refines it.
  EXPECT_EQ(arena.lbd(r), 4u);
  arena.set_lbd(r, 2);
  EXPECT_EQ(arena.lbd(r), 2u);
  // LBD storage must not disturb its neighbors.
  EXPECT_EQ(arena.size(r), 4u);
  EXPECT_FLOAT_EQ(arena.activity(r), 0.0f);
  EXPECT_EQ(arena.lit(r, 0), Lit::from_dimacs(1));
}

TEST(ClauseArenaTest, LbdSurvivesGc) {
  ClauseArena arena;
  const ClauseRef a = arena.alloc(lits({1, 2}), true);
  const ClauseRef b = arena.alloc(lits({3, 4, 5}), true);
  arena.set_lbd(b, 2);
  arena.free(a);
  const auto remap = arena.gc();
  const ClauseRef b_new = remap(b);
  ASSERT_NE(b_new, kNoClause);
  EXPECT_EQ(arena.lbd(b_new), 2u);
}

TEST(ClauseArenaTest, ForEachSkipsDeleted) {
  ClauseArena arena;
  const ClauseRef a = arena.alloc(lits({1, 2}), false);
  const ClauseRef b = arena.alloc(lits({3, 4}), true);
  const ClauseRef c = arena.alloc(lits({5, 6}), false);
  arena.free(b);
  std::vector<ClauseRef> seen;
  arena.for_each([&](ClauseRef r) { seen.push_back(r); });
  EXPECT_EQ(seen, (std::vector<ClauseRef>{a, c}));
}

TEST(ClauseArenaTest, GcCompactsAndRemaps) {
  ClauseArena arena;
  const ClauseRef a = arena.alloc(lits({1, 2}), false);
  const ClauseRef b = arena.alloc(lits({3, 4, 5}), true);
  const ClauseRef c = arena.alloc(lits({6, 7}), false);
  arena.free(b);
  const std::size_t live_before = arena.live_bytes();
  const auto remap = arena.gc();
  EXPECT_EQ(arena.garbage_bytes(), 0u);
  EXPECT_EQ(arena.live_bytes(), live_before);
  EXPECT_EQ(remap(a), a);  // first clause does not move
  EXPECT_EQ(remap(b), kNoClause);
  const ClauseRef c_new = remap(c);
  EXPECT_NE(c_new, kNoClause);
  EXPECT_EQ(arena.lit(c_new, 0), Lit::from_dimacs(6));
  EXPECT_EQ(arena.lit(c_new, 1), Lit::from_dimacs(7));
  // Sentinels pass through.
  EXPECT_EQ(remap(kNoClause), kNoClause);
  EXPECT_EQ(remap(kDecisionReason), kDecisionReason);
}

TEST(ClauseArenaTest, GcOnEmptyAndFullyLive) {
  ClauseArena arena;
  (void)arena.gc();  // empty arena: no-op
  const ClauseRef a = arena.alloc(lits({1, 2}), false);
  const auto remap = arena.gc();
  EXPECT_EQ(remap(a), a);
}

TEST(ClauseArenaTest, RemoveLitShiftsTailAndPadsGap) {
  ClauseArena arena;
  const ClauseRef r = arena.alloc(lits({1, -2, 3, -4}), true);
  const std::size_t live_before = arena.live_bytes();
  arena.remove_lit(r, 1);  // drop -2 from the middle
  EXPECT_EQ(arena.size(r), 3u);
  EXPECT_EQ(arena.lit(r, 0), Lit::from_dimacs(1));
  EXPECT_EQ(arena.lit(r, 1), Lit::from_dimacs(3));
  EXPECT_EQ(arena.lit(r, 2), Lit::from_dimacs(-4));
  // The vacated word becomes pad: one word moves from live to garbage.
  EXPECT_EQ(arena.live_bytes(), live_before - 4);
  EXPECT_EQ(arena.garbage_bytes(), 4u);
  // Dropping the last slot works too.
  arena.remove_lit(r, 2);
  EXPECT_EQ(arena.size(r), 2u);
  EXPECT_EQ(arena.lit(r, 1), Lit::from_dimacs(3));
}

TEST(ClauseArenaTest, ForEachAndGcSkipPadWords) {
  ClauseArena arena;
  const ClauseRef a = arena.alloc(lits({1, 2, 3}), false);
  const ClauseRef b = arena.alloc(lits({4, 5, 6, 7}), true);
  arena.remove_lit(a, 2);  // pad word sits between a and b
  std::vector<ClauseRef> seen;
  arena.for_each([&](ClauseRef r) { seen.push_back(r); });
  EXPECT_EQ(seen, (std::vector<ClauseRef>{a, b}));
  const auto remap = arena.gc();
  // gc squeezes the pad out: b slides down by exactly one word.
  EXPECT_EQ(remap(a), a);
  EXPECT_EQ(remap(b), b - 1);
  EXPECT_EQ(arena.garbage_bytes(), 0u);
  EXPECT_EQ(arena.lit(remap(b), 3), Lit::from_dimacs(7));
}

TEST(ClauseArenaTest, GcOrderedRewritesInCallerOrder) {
  ClauseArena arena;
  const ClauseRef a = arena.alloc(lits({1, 2}), false);
  const ClauseRef b = arena.alloc(lits({3, 4, 5}), true);
  const ClauseRef c = arena.alloc(lits({6, 7}), true);
  const ClauseRef d = arena.alloc(lits({8, 9, 10}), false);
  arena.remove_lit(b, 2);  // leave a pad so compaction has work to do
  const std::size_t live_before = arena.live_bytes();
  // Caller-chosen layout: problem clauses first, then learned reversed.
  const std::vector<ClauseRef> order{a, d, c, b};
  const auto remap = arena.gc_ordered(order);
  EXPECT_EQ(arena.garbage_bytes(), 0u);
  EXPECT_EQ(arena.live_bytes(), live_before);
  // New refs are laid out exactly in the requested order.
  EXPECT_LT(remap(a), remap(d));
  EXPECT_LT(remap(d), remap(c));
  EXPECT_LT(remap(c), remap(b));
  // Payloads, flags, and sizes survive the move.
  EXPECT_EQ(arena.lit(remap(a), 0), Lit::from_dimacs(1));
  EXPECT_EQ(arena.lit(remap(d), 2), Lit::from_dimacs(10));
  EXPECT_EQ(arena.size(remap(b)), 2u);
  EXPECT_TRUE(arena.learned(remap(c)));
  EXPECT_FALSE(arena.learned(remap(d)));
  // The remap stays queryable by old ref even though the caller's order
  // was not address order (lookup re-sorts internally).
  EXPECT_EQ(remap(kNoClause), kNoClause);
  std::vector<ClauseRef> seen;
  arena.for_each([&](ClauseRef r) { seen.push_back(r); });
  EXPECT_EQ(seen.size(), 4u);
}

TEST(ClauseArenaTest, GcOrderedPreservesActivityAndLbd) {
  ClauseArena arena;
  const ClauseRef a = arena.alloc(lits({1, 2, 3}), true);
  const ClauseRef b = arena.alloc(lits({4, 5, 6}), true);
  arena.set_activity(a, 1.25f);
  arena.set_lbd(a, 2);
  arena.set_activity(b, 7.5f);
  const auto remap = arena.gc_ordered(std::vector<ClauseRef>{b, a});
  EXPECT_FLOAT_EQ(arena.activity(remap(a)), 1.25f);
  EXPECT_EQ(arena.lbd(remap(a)), 2u);
  EXPECT_FLOAT_EQ(arena.activity(remap(b)), 7.5f);
}

TEST(ClauseArenaTest, CountsTrackLearnedAndProblem) {
  ClauseArena arena;
  const ClauseRef a = arena.alloc(lits({1, 2}), true);
  (void)arena.alloc(lits({3, 4}), true);
  (void)arena.alloc(lits({5, 6}), false);
  EXPECT_EQ(arena.num_learned(), 2u);
  EXPECT_EQ(arena.num_problem(), 1u);
  arena.free(a);
  EXPECT_EQ(arena.num_learned(), 1u);
}

}  // namespace
}  // namespace gridsat::solver
