// The binary-clause fast path (BCP microarchitecture, DESIGN.md):
//   * binary implications propagate from the dedicated store, with the
//     same verdicts as the general-watcher path (ablation flag off);
//   * conflict analysis works with binary reason clauses (the implied
//     literal is kept in slot 0 by the fast path);
//   * binary clauses survive split / import / export and DB maintenance
//     (reduce, emergency drop, garbage collection);
//   * check_invariants() covers both watcher stores;
//   * differential fuzzing against brute force, biased toward formulas
//     with many binary clauses.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "cnf/formula.hpp"
#include "gen/pigeonhole.hpp"
#include "gen/random_ksat.hpp"
#include "solver/brute_force.hpp"
#include "solver/cdcl.hpp"

namespace gridsat::solver {
namespace {

using cnf::CnfFormula;
using cnf::LBool;
using cnf::Lit;

/// A random mix of binary and ternary clauses: the clause population the
/// fast path exists for (binary learned/shared clauses dominate real
/// runs; here the problem clauses themselves are biased).
CnfFormula binary_heavy(cnf::Var num_vars, std::size_t num_binary,
                        std::size_t num_ternary, std::uint64_t seed) {
  const CnfFormula f2 = gen::random_ksat(num_vars, num_binary, 2, seed);
  const CnfFormula f3 =
      gen::random_ksat(num_vars, num_ternary, 3, seed * 31 + 17);
  CnfFormula f(num_vars);
  for (const auto& c : f2.clauses()) f.add_clause(c);
  for (const auto& c : f3.clauses()) f.add_clause(c);
  return f;
}

TEST(BinaryBcpTest, ChainPropagatesWithoutDecisions) {
  // V1 and a pure-binary chain V1 -> V2 -> ... -> V8.
  CnfFormula f;
  f.add_dimacs_clause({1});
  for (int v = 1; v < 8; ++v) f.add_dimacs_clause({-v, v + 1});
  CdclSolver solver(f);
  ASSERT_EQ(solver.solve(), SolveStatus::kSat);
  for (cnf::Var v = 1; v <= 8; ++v) EXPECT_EQ(solver.model()[v], LBool::kTrue);
  EXPECT_EQ(solver.stats().decisions, 0u);
}

TEST(BinaryBcpTest, BinaryConflictAtLevelZeroIsUnsat) {
  // V1 -> V2, V1 -> ~V2, plus the unit V1: refuted by binary BCP alone.
  CnfFormula f;
  f.add_dimacs_clause({1});
  f.add_dimacs_clause({-1, 2});
  f.add_dimacs_clause({-1, -2});
  CdclSolver solver(f);
  EXPECT_EQ(solver.solve(), SolveStatus::kUnsat);
}

TEST(BinaryBcpTest, FastPathActuallyTaken) {
  CdclSolver solver(gen::pigeonhole_unsat(6));
  EXPECT_EQ(solver.solve(), SolveStatus::kUnsat);
  // Pigeonhole's at-most-one constraints are all binary, so the bulk of
  // propagation must flow through the binary store.
  EXPECT_GT(solver.stats().binary_propagations, 0u);
  EXPECT_GT(solver.stats().binary_propagations,
            solver.stats().propagations / 2);
}

TEST(BinaryBcpTest, AblationFlagDisablesStore) {
  SolverConfig config;
  config.binary_fast_path = false;
  CdclSolver solver(gen::pigeonhole_unsat(6), config);
  EXPECT_EQ(solver.solve(), SolveStatus::kUnsat);
  EXPECT_EQ(solver.stats().binary_propagations, 0u);
}

TEST(BinaryBcpTest, ConflictAnalysisWithBinaryReasons) {
  // A conflict whose implication graph is all binary edges: the decision
  // V1 implies V2, V3 via binaries and clause (~V2 ~V3) conflicts. The
  // learned clause must be the unit ~V1 (FirstUIP = the decision).
  CnfFormula f;
  f.add_dimacs_clause({-1, 2});
  f.add_dimacs_clause({-1, 3});
  f.add_dimacs_clause({-2, -3});
  f.add_dimacs_clause({1, 4});  // keep the instance SAT overall
  std::optional<ConflictRecord> record;
  CdclSolver solver(f);
  solver.set_conflict_observer([&](const ConflictRecord& rec) {
    if (!record.has_value()) record = rec;
  });
  solver.set_decision_hook(
      [used = false]() mutable { return used ? cnf::kUndefLit : (used = true, Lit(1, false)); });
  ASSERT_EQ(solver.solve(), SolveStatus::kSat);
  ASSERT_TRUE(record.has_value());
  ASSERT_EQ(record->learned_clause.size(), 1u);
  EXPECT_EQ(record->learned_clause[0], Lit(1, true));
  EXPECT_EQ(solver.model()[1], LBool::kFalse);
}

TEST(BinaryBcpTest, InvariantsHoldOverBothStores) {
  for (const bool fast : {true, false}) {
    SolverConfig config;
    config.binary_fast_path = fast;
    CdclSolver solver(binary_heavy(30, 45, 80, 11), config);
    SolveStatus status = SolveStatus::kUnknown;
    int slices = 0;
    while (status == SolveStatus::kUnknown && slices < 50) {
      status = solver.solve(1000);
      EXPECT_EQ(solver.check_invariants(), "")
          << "fast=" << fast << " slice " << slices;
      ++slices;
    }
  }
}

TEST(BinaryBcpTest, DbMaintenanceKeepsBinaryStoreCoherent) {
  // Tiny reduce threshold: many reduce_db() + garbage_collect() rounds
  // while binary learned clauses (exempt from reduction) accumulate.
  SolverConfig config;
  config.reduce_base = 20;
  config.reduce_growth = 1.0;
  // pigeonhole-6: hard enough to force many reduce rounds at this cap,
  // small enough to still refute while the learned DB is thrashing.
  CdclSolver solver(gen::pigeonhole_unsat(6), config);
  SolveStatus status = SolveStatus::kUnknown;
  int slices = 0;
  while (status == SolveStatus::kUnknown && slices < 200) {
    status = solver.solve(5000);
    ASSERT_EQ(solver.check_invariants(), "") << "slice " << slices;
    ++slices;
  }
  EXPECT_EQ(status, SolveStatus::kUnsat);
  EXPECT_GT(solver.stats().db_reductions, 0u);
}

TEST(BinaryBcpTest, EmergencyDropDetachesBinaries) {
  // Force the memory squeeze path (drop_all_learned drops learned
  // binaries too) and verify the stores stay coherent.
  SolverConfig config;
  config.memory_limit_bytes = 48 * 1024;
  CdclSolver solver(gen::pigeonhole_unsat(9), config);
  const SolveStatus status = solver.solve(50'000'000);
  EXPECT_NE(status, SolveStatus::kUnknown);
  EXPECT_EQ(solver.check_invariants(), "");
}

TEST(BinaryBcpTest, SplitCarriesBinaryClauses) {
  int splits_seen = 0;
  // Pigeonhole instances are dominated by binary at-most-one clauses and
  // never resolve within a few small slices, so they reliably exercise
  // split(): the subproblem must carry its binary store faithfully.
  for (int n : {6, 7}) {
    CdclSolver a(gen::pigeonhole_unsat(n));
    std::optional<Subproblem> other;
    for (int attempts = 0; attempts < 5000 && !other.has_value(); ++attempts) {
      if (a.solve(100) != SolveStatus::kUnknown) break;
      if (a.can_split()) other = a.split();
    }
    ASSERT_TRUE(other.has_value()) << "pigeonhole-" << n << " never split";
    ++splits_seen;
    CdclSolver b(*other);
    EXPECT_EQ(b.check_invariants(), "");
    EXPECT_EQ(a.solve(), SolveStatus::kUnsat) << "pigeonhole-" << n;
    EXPECT_EQ(b.solve(), SolveStatus::kUnsat) << "pigeonhole-" << n;
  }
  // Random binary-heavy formulas: most resolve before a split is possible,
  // but any split that does occur must preserve the combined verdict.
  for (int seed = 0; seed < 20; ++seed) {
    const CnfFormula f = binary_heavy(16, 20, 45, seed * 13 + 3);
    const bool truth = brute_force_solve(f).has_value();
    CdclSolver a(f);
    std::optional<Subproblem> other;
    for (int attempts = 0; attempts < 2000 && !other.has_value(); ++attempts) {
      if (a.solve(200) != SolveStatus::kUnknown) break;
      if (a.can_split()) other = a.split();
    }
    if (!other.has_value()) continue;  // resolved before splitting; fine
    ++splits_seen;
    CdclSolver b(*other);
    EXPECT_EQ(b.check_invariants(), "");
    const SolveStatus sa = a.solve();
    const SolveStatus sb = b.solve();
    ASSERT_NE(sa, SolveStatus::kUnknown);
    ASSERT_NE(sb, SolveStatus::kUnknown);
    const bool combined = (sa == SolveStatus::kSat) || (sb == SolveStatus::kSat);
    EXPECT_EQ(combined, truth) << "seed " << seed;
  }
  EXPECT_GT(splits_seen, 0) << "sweep never exercised a split";
}

TEST(BinaryBcpTest, ExportedBinariesImportSoundly) {
  // Learned binaries exported by one solver import into a fresh solver
  // on the same formula without changing its verdict.
  for (int seed = 0; seed < 10; ++seed) {
    const CnfFormula f = binary_heavy(18, 24, 50, seed * 7 + 1);
    const bool truth = brute_force_solve(f).has_value();
    CdclSolver exporter(f);
    std::vector<cnf::Clause> shared;
    exporter.set_share_callback([&](const cnf::Clause& c, std::uint32_t) {
      if (c.size() <= 2) shared.push_back(c);
    });
    (void)exporter.solve();
    CdclSolver importer(f);
    importer.import_clauses(shared);
    const SolveStatus status = importer.solve();
    EXPECT_EQ(importer.check_invariants(), "");
    EXPECT_EQ(status == SolveStatus::kSat, truth) << "seed " << seed;
    if (status == SolveStatus::kSat) {
      EXPECT_TRUE(is_model(f, importer.model()));
    }
  }
}

// --- Differential fuzz: binary-biased formulas, fast path on vs off ------

class BinaryBcpFuzz : public testing::TestWithParam<int> {};

TEST_P(BinaryBcpFuzz, AgreesWithBruteForceAndAblation) {
  const int seed = GetParam();
  // Around the mixed 2+3-SAT phase transition so both verdicts occur.
  const CnfFormula f = binary_heavy(12, 14, 32, static_cast<std::uint64_t>(seed) * 6151 + 29);
  const auto truth = brute_force_solve(f);

  CdclSolver fast(f);
  SolverConfig slow_config;
  slow_config.binary_fast_path = false;
  CdclSolver slow(f, slow_config);

  const SolveStatus fast_status = fast.solve();
  const SolveStatus slow_status = slow.solve();
  EXPECT_EQ(fast_status, slow_status) << "seed " << seed;
  EXPECT_EQ(fast_status,
            truth.has_value() ? SolveStatus::kSat : SolveStatus::kUnsat)
      << "seed " << seed;
  EXPECT_EQ(fast.check_invariants(), "");
  if (fast_status == SolveStatus::kSat) {
    EXPECT_TRUE(is_model(f, fast.model()));
    EXPECT_TRUE(is_model(f, slow.model()));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BinaryBcpFuzz, testing::Range(0, 40));

}  // namespace
}  // namespace gridsat::solver
