// CDCL solver unit + property tests: verdict correctness against brute
// force and DPLL, model validity, invariants, budgeted execution,
// memory-out behaviour, and statistics sanity.
#include <gtest/gtest.h>

#include <optional>

#include "cnf/formula.hpp"
#include "gen/circuit_families.hpp"
#include "gen/graph_color.hpp"
#include "gen/pigeonhole.hpp"
#include "gen/random_ksat.hpp"
#include "gen/xor_chains.hpp"
#include "solver/brute_force.hpp"
#include "solver/cdcl.hpp"
#include "solver/dpll.hpp"
#include "solver/proof.hpp"

namespace gridsat::solver {
namespace {

using cnf::CnfFormula;
using cnf::LBool;
using cnf::Lit;

TEST(CdclBasicTest, EmptyFormulaIsSat) {
  CnfFormula f(3);
  CdclSolver solver(f);
  EXPECT_EQ(solver.solve(), SolveStatus::kSat);
  EXPECT_TRUE(is_model(f, solver.model()));
}

TEST(CdclBasicTest, SingleUnitClause) {
  CnfFormula f;
  f.add_dimacs_clause({-4});
  CdclSolver solver(f);
  ASSERT_EQ(solver.solve(), SolveStatus::kSat);
  EXPECT_EQ(solver.model()[4], LBool::kFalse);
  EXPECT_TRUE(is_model(f, solver.model()));
}

TEST(CdclBasicTest, ContradictingUnitsAreUnsat) {
  CnfFormula f;
  f.add_dimacs_clause({2});
  f.add_dimacs_clause({-2});
  CdclSolver solver(f);
  EXPECT_EQ(solver.solve(), SolveStatus::kUnsat);
}

TEST(CdclBasicTest, EmptyClauseIsUnsat) {
  CnfFormula f(2);
  f.add_clause(cnf::Clause{});
  CdclSolver solver(f);
  EXPECT_EQ(solver.solve(), SolveStatus::kUnsat);
}

TEST(CdclBasicTest, ChainOfImplications) {
  // V1 and a chain V1 -> V2 -> ... -> V6: pure propagation, no search.
  CnfFormula f;
  f.add_dimacs_clause({1});
  for (int v = 1; v < 6; ++v) {
    f.add_dimacs_clause({-v, v + 1});
  }
  CdclSolver solver(f);
  ASSERT_EQ(solver.solve(), SolveStatus::kSat);
  for (cnf::Var v = 1; v <= 6; ++v) {
    EXPECT_EQ(solver.model()[v], LBool::kTrue);
  }
  EXPECT_EQ(solver.stats().decisions, 0u);
}

TEST(CdclBasicTest, TautologyIgnored) {
  CnfFormula f;
  f.add_dimacs_clause({1, -1});
  f.add_dimacs_clause({2});
  CdclSolver solver(f);
  ASSERT_EQ(solver.solve(), SolveStatus::kSat);
  EXPECT_EQ(solver.model()[2], LBool::kTrue);
}

TEST(CdclBasicTest, DuplicateLiteralsHandled) {
  CnfFormula f;
  f.add_dimacs_clause({3, 3, 3});
  CdclSolver solver(f);
  ASSERT_EQ(solver.solve(), SolveStatus::kSat);
  EXPECT_EQ(solver.model()[3], LBool::kTrue);
}

TEST(CdclBasicTest, SolveIsIdempotentAfterVerdict) {
  CnfFormula f;
  f.add_dimacs_clause({1, 2});
  CdclSolver solver(f);
  EXPECT_EQ(solver.solve(), SolveStatus::kSat);
  EXPECT_EQ(solver.solve(), SolveStatus::kSat);

  CnfFormula g;
  g.add_dimacs_clause({1});
  g.add_dimacs_clause({-1});
  CdclSolver solver2(g);
  EXPECT_EQ(solver2.solve(), SolveStatus::kUnsat);
  EXPECT_EQ(solver2.solve(), SolveStatus::kUnsat);
}

// --- Differential tests against brute force -----------------------------

struct RandomSweepParams {
  cnf::Var num_vars;
  double clause_ratio;
};

class CdclRandomSweep
    : public testing::TestWithParam<std::tuple<RandomSweepParams, int>> {};

TEST_P(CdclRandomSweep, AgreesWithBruteForce) {
  const auto [params, seed] = GetParam();
  const auto num_clauses = static_cast<std::size_t>(
      static_cast<double>(params.num_vars) * params.clause_ratio);
  const CnfFormula f =
      gen::random_ksat(params.num_vars, num_clauses, 3,
                       static_cast<std::uint64_t>(seed) * 7919 + 13);
  const auto truth = brute_force_solve(f);
  CdclSolver solver(f);
  const SolveStatus status = solver.solve();
  if (truth.has_value()) {
    ASSERT_EQ(status, SolveStatus::kSat) << "seed " << seed;
    EXPECT_TRUE(is_model(f, solver.model())) << "seed " << seed;
  } else {
    EXPECT_EQ(status, SolveStatus::kUnsat) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CdclRandomSweep,
    testing::Combine(testing::Values(RandomSweepParams{8, 3.0},
                                     RandomSweepParams{10, 4.26},
                                     RandomSweepParams{12, 4.26},
                                     RandomSweepParams{14, 5.0},
                                     RandomSweepParams{16, 4.26}),
                     testing::Range(0, 20)));

class CdclDpllAgreement : public testing::TestWithParam<int> {};

TEST_P(CdclDpllAgreement, SameVerdictAsDpll) {
  const int seed = GetParam();
  const CnfFormula f = gen::random_ksat(
      18, static_cast<std::size_t>(18 * 4.26), 3,
      static_cast<std::uint64_t>(seed) * 104729 + 7);
  CdclSolver cdcl(f);
  DpllSolver dpll(f);
  const SolveStatus a = cdcl.solve();
  const SolveStatus b = dpll.solve();
  EXPECT_EQ(a, b) << "seed " << seed;
  if (a == SolveStatus::kSat) {
    EXPECT_TRUE(is_model(f, cdcl.model()));
    EXPECT_TRUE(is_model(f, dpll.model()));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CdclDpllAgreement, testing::Range(0, 25));

// --- Structured families -------------------------------------------------

TEST(CdclFamiliesTest, PigeonholeUnsat) {
  for (const std::size_t holes : {2, 3, 4, 5, 6}) {
    CdclSolver solver(gen::pigeonhole_unsat(holes));
    EXPECT_EQ(solver.solve(), SolveStatus::kUnsat) << "holes=" << holes;
  }
}

TEST(CdclFamiliesTest, PigeonholeSatWhenRoomy) {
  CdclSolver solver(gen::pigeonhole(4, 5));
  EXPECT_EQ(solver.solve(), SolveStatus::kSat);
}

TEST(CdclFamiliesTest, PlantedKsatIsSat) {
  for (int seed = 0; seed < 10; ++seed) {
    const CnfFormula f = gen::random_ksat_planted(40, 300, 3, seed);
    CdclSolver solver(f);
    ASSERT_EQ(solver.solve(), SolveStatus::kSat) << "seed " << seed;
    EXPECT_TRUE(is_model(f, solver.model()));
  }
}

TEST(CdclFamiliesTest, XorSystemConsistency) {
  gen::XorSystemParams params;
  params.num_vars = 24;
  params.num_equations = 24;
  params.width = 3;
  params.seed = 5;
  params.consistent = true;
  CdclSolver sat_solver(gen::xor_system(params));
  EXPECT_EQ(sat_solver.solve(), SolveStatus::kSat);
  params.consistent = false;
  CdclSolver unsat_solver(gen::xor_system(params));
  EXPECT_EQ(unsat_solver.solve(), SolveStatus::kUnsat);
}

TEST(CdclFamiliesTest, UrquhartLikeUnsat) {
  for (const std::size_t n : {5, 8, 10}) {
    CdclSolver solver(gen::urquhart_like(n, 3));
    EXPECT_EQ(solver.solve(), SolveStatus::kUnsat) << "n=" << n;
  }
}

TEST(CdclFamiliesTest, FactoringComposite) {
  // 143 = 11 * 13, both fit in 4 bits.
  const CnfFormula f = gen::factoring(143, 4);
  CdclSolver solver(f);
  ASSERT_EQ(solver.solve(), SolveStatus::kSat);
  EXPECT_TRUE(is_model(f, solver.model()));
}

TEST(CdclFamiliesTest, FactoringPrimeUnsat) {
  // 13 is prime: no factorization with both factors > 1.
  CdclSolver solver(gen::factoring(13, 4));
  EXPECT_EQ(solver.solve(), SolveStatus::kUnsat);
}

TEST(CdclFamiliesTest, CounterBmcReachable) {
  CdclSolver solver(gen::counter_bmc(4, 9, 9));
  EXPECT_EQ(solver.solve(), SolveStatus::kSat);
}

TEST(CdclFamiliesTest, CounterBmcUnreachable) {
  CdclSolver solver(gen::counter_bmc(4, 9, 5));
  EXPECT_EQ(solver.solve(), SolveStatus::kUnsat);
}

TEST(CdclFamiliesTest, AdderMiterUnsatWhenCorrect) {
  CdclSolver solver(gen::adder_miter(5, /*plant_bug=*/false, 1));
  EXPECT_EQ(solver.solve(), SolveStatus::kUnsat);
}

TEST(CdclFamiliesTest, AdderMiterSatWhenBuggy) {
  for (int seed = 0; seed < 5; ++seed) {
    const CnfFormula f = gen::adder_miter(5, /*plant_bug=*/true, seed);
    CdclSolver solver(f);
    ASSERT_EQ(solver.solve(), SolveStatus::kSat) << "seed " << seed;
    EXPECT_TRUE(is_model(f, solver.model()));
  }
}

TEST(CdclFamiliesTest, MultCommMiterUnsat) {
  CdclSolver solver(gen::mult_comm_miter(3));
  EXPECT_EQ(solver.solve(), SolveStatus::kUnsat);
}

TEST(CdclFamiliesTest, GridColoringBipartite) {
  CdclSolver two_colors(gen::grid_coloring(4, 4, 2, /*add_diagonals=*/false));
  EXPECT_EQ(two_colors.solve(), SolveStatus::kSat);
  CdclSolver with_triangles(gen::grid_coloring(4, 4, 2, /*add_diagonals=*/true));
  EXPECT_EQ(with_triangles.solve(), SolveStatus::kUnsat);
  CdclSolver three_colors(gen::grid_coloring(4, 4, 3, /*add_diagonals=*/true));
  EXPECT_EQ(three_colors.solve(), SolveStatus::kSat);
}

TEST(CdclFamiliesTest, MutilatedChessboardUnsat) {
  for (const std::size_t n : {2, 3}) {
    CdclSolver solver(gen::mutilated_chessboard(n));
    EXPECT_EQ(solver.solve(), SolveStatus::kUnsat) << "n=" << n;
  }
}

// --- Budgeted execution ---------------------------------------------------

TEST(CdclBudgetTest, ResumableSolvingMatchesOneShot) {
  for (int seed = 0; seed < 5; ++seed) {
    const CnfFormula f = gen::random_ksat(30, 128, 3, seed + 100);
    CdclSolver one_shot(f);
    const SolveStatus expected = one_shot.solve();

    CdclSolver stepped(f);
    SolveStatus status = SolveStatus::kUnknown;
    int slices = 0;
    while (status == SolveStatus::kUnknown) {
      status = stepped.solve(500);
      ASSERT_LT(++slices, 100000);
    }
    EXPECT_EQ(status, expected) << "seed " << seed;
    if (status == SolveStatus::kSat) {
      EXPECT_TRUE(is_model(f, stepped.model()));
    }
  }
}

TEST(CdclBudgetTest, TinyBudgetReturnsUnknown) {
  const CnfFormula f = gen::pigeonhole_unsat(7);
  CdclSolver solver(f);
  EXPECT_EQ(solver.solve(1), SolveStatus::kUnknown);
  EXPECT_EQ(solver.status(), SolveStatus::kUnknown);
}

TEST(CdclBudgetTest, WorkMonotonicallyIncreases) {
  const CnfFormula f = gen::pigeonhole_unsat(6);
  CdclSolver solver(f);
  std::uint64_t last_work = 0;
  for (int i = 0; i < 10; ++i) {
    if (solver.solve(1000) != SolveStatus::kUnknown) break;
    EXPECT_GT(solver.stats().work, last_work);
    last_work = solver.stats().work;
  }
}

// --- Memory-out behaviour --------------------------------------------------

TEST(CdclMemoryTest, TinyLimitYieldsMemOut) {
  // A hard instance with an absurdly small DB limit must report kMemOut,
  // mirroring the paper's zChaff MEM_OUT rows.
  const CnfFormula f = gen::pigeonhole_unsat(9);
  SolverConfig config;
  config.memory_limit_bytes = 40 * 1024;
  CdclSolver limited(f, config);
  const SolveStatus status = limited.solve(200'000'000);
  EXPECT_EQ(status, SolveStatus::kMemOut);
  EXPECT_GT(limited.stats().db_reductions, 0u);
}

TEST(CdclMemoryTest, PeakDbBytesTracked) {
  const CnfFormula f = gen::pigeonhole_unsat(7);
  CdclSolver solver(f);
  solver.solve();
  EXPECT_GT(solver.stats().peak_db_bytes, 0u);
  EXPECT_GT(solver.db_bytes(), 0u);
}

// --- Invariants and stats ---------------------------------------------------

TEST(CdclInvariantTest, InvariantsHoldDuringSearch) {
  const CnfFormula f = gen::random_ksat(25, 106, 3, 77);
  CdclSolver solver(f);
  SolveStatus status = SolveStatus::kUnknown;
  int checks = 0;
  while (status == SolveStatus::kUnknown && checks < 50) {
    status = solver.solve(2000);
    EXPECT_EQ(solver.check_invariants(), "") << "after slice " << checks;
    ++checks;
  }
}

TEST(CdclStatsTest, ConflictsImplyLearnedClauses) {
  const CnfFormula f = gen::pigeonhole_unsat(6);
  CdclSolver solver(f);
  solver.solve();
  const auto& stats = solver.stats();
  EXPECT_GT(stats.conflicts, 0u);
  EXPECT_GT(stats.learned_clauses, 0u);
  EXPECT_GT(stats.decisions, 0u);
  EXPECT_GT(stats.propagations, 0u);
  EXPECT_GT(stats.work, stats.propagations);
}

TEST(CdclStatsTest, ShareCallbackSeesEveryLearnedClause) {
  // Every learned clause goes out through the callback, and so does every
  // on-the-fly strengthened clause (the stronger literal set must reach
  // peers too) — nothing else does.
  const CnfFormula f = gen::pigeonhole_unsat(5);
  CdclSolver solver(f);
  std::size_t shared = 0;
  solver.set_share_callback([&](const cnf::Clause&, std::uint32_t) { ++shared; });
  solver.solve();
  EXPECT_EQ(shared,
            solver.stats().learned_clauses + solver.stats().otf_strengthened);
  EXPECT_EQ(shared, solver.stats().exported_clauses);
}

TEST(CdclMinimizeTest, RecursiveBeatsBasicOnClauseLength) {
  // The recursive DFS can only remove more literals than the one-reason-
  // deep check: on a pigeonhole run both modes terminate with the same
  // verdict, and the deep mode's average learned length is no longer.
  const CnfFormula f = gen::pigeonhole_unsat(7);
  SolverConfig basic;
  basic.minimize_recursive = false;
  basic.minimize_bin = false;
  basic.otf_subsume = false;
  SolverConfig deep = basic;
  deep.minimize_recursive = true;
  CdclSolver a(f, basic);
  CdclSolver b(f, deep);
  EXPECT_EQ(a.solve(), SolveStatus::kUnsat);
  EXPECT_EQ(b.solve(), SolveStatus::kUnsat);
  EXPECT_GT(b.stats().minimized_literals, 0u);
  const double avg_a = static_cast<double>(a.stats().learned_literals) /
                       static_cast<double>(a.stats().learned_clauses);
  const double avg_b = static_cast<double>(b.stats().learned_literals) /
                       static_cast<double>(b.stats().learned_clauses);
  EXPECT_LE(avg_b, avg_a + 0.5);
}

TEST(CdclMinimizeTest, DifferentialSweepAgainstPlainPipeline) {
  // Differential fuzz over the whole learned-clause pipeline: for each
  // random instance, solve once with minimization + binary strengthening
  // + on-the-fly subsumption + compaction all ON and once all OFF. The
  // verdicts must agree (and match brute force), SAT models must satisfy
  // the formula, and on UNSAT the full DRUP log — which contains an add
  // for every minimized, strengthened, and subsumed clause — must replay
  // through the proof checker, certifying each one is still implied.
  std::uint64_t total_minimized = 0;
  std::uint64_t total_bin = 0;
  std::uint64_t total_otf = 0;
  for (int seed = 0; seed < 12; ++seed) {
    CnfFormula f;
    switch (seed % 3) {
      case 0: f = gen::random_ksat(16, 70, 3, 101 + seed); break;
      case 1: f = gen::random_ksat(14, 62, 3, 202 + seed); break;
      default: f = gen::pigeonhole_unsat(4); break;
    }
    SolverConfig off;
    off.minimize_learned = false;
    off.otf_subsume = false;
    off.arena_compact = false;
    SolverConfig on;
    on.log_proof = true;
    CdclSolver plain(f, off);
    CdclSolver full(f, on);
    const SolveStatus expect_plain = plain.solve();
    const SolveStatus expect_full = full.solve();
    ASSERT_EQ(expect_plain, expect_full) << "seed " << seed;
    const auto truth = brute_force_solve(f);
    ASSERT_EQ(expect_full,
              truth.has_value() ? SolveStatus::kSat : SolveStatus::kUnsat)
        << "seed " << seed;
    if (expect_full == SolveStatus::kSat) {
      EXPECT_TRUE(is_model(f, full.model())) << "seed " << seed;
    } else if (kProofCompiledIn) {
      const ProofCheckResult result = check_unsat_proof(f, full.proof());
      EXPECT_TRUE(result.valid) << "seed " << seed << ": " << result.message;
    }
    total_minimized += full.stats().minimized_literals;
    total_bin += full.stats().bin_strengthened_literals;
    total_otf += full.stats().otf_strengthened;
  }
  // The sweep must actually exercise every pipeline stage, or the
  // differential check above is vacuous.
  EXPECT_GT(total_minimized, 0u);
  EXPECT_GT(total_bin, 0u);
  EXPECT_GT(total_otf, 0u);
}

TEST(CdclReduceTest, DeepDecisionLevelReduceWithCompactionHoldsInvariants) {
  // reduce_db() historically ran at deep decision levels (it fires from
  // the search loop, not from restarts), and the ordered compaction moves
  // every clause: reasons on the trail, watcher lists, and the binary
  // store must all survive the remap. A tiny reduce threshold forces
  // many reduce+compact rounds mid-search; check_invariants() verifies
  // watch sanity and that each trail literal's long reason still has the
  // implied literal in slot 0 after every slice.
  const CnfFormula f = gen::pigeonhole_unsat(6);
  SolverConfig config;
  config.reduce_base = 60;
  config.reduce_growth = 1.01;
  config.arena_compact = true;
  CdclSolver compacting(f, config);
  SolveStatus status = SolveStatus::kUnknown;
  int slices = 0;
  while (status == SolveStatus::kUnknown && slices < 2000) {
    status = compacting.solve(1000);
    ASSERT_EQ(compacting.check_invariants(), "") << "after slice " << slices;
    ++slices;
  }
  EXPECT_EQ(status, SolveStatus::kUnsat);
  EXPECT_GT(compacting.stats().arena_compactions, 0u);
  EXPECT_GT(compacting.stats().db_reductions, 0u);
}

TEST(CdclConfigTest, MinimizationShortensClauses) {
  const CnfFormula f = gen::pigeonhole_unsat(7);
  SolverConfig plain;
  SolverConfig minimizing;
  minimizing.minimize_learned = true;
  CdclSolver a(f, plain);
  CdclSolver b(f, minimizing);
  EXPECT_EQ(a.solve(), SolveStatus::kUnsat);
  EXPECT_EQ(b.solve(), SolveStatus::kUnsat);
  const double avg_a = static_cast<double>(a.stats().learned_literals) /
                       static_cast<double>(a.stats().learned_clauses);
  const double avg_b = static_cast<double>(b.stats().learned_literals) /
                       static_cast<double>(b.stats().learned_clauses);
  EXPECT_LE(avg_b, avg_a + 0.5);
}

TEST(CdclConfigTest, RestartsDisabled) {
  SolverConfig config;
  config.restart_base = 0;
  const CnfFormula f = gen::random_ksat(20, 85, 3, 3);
  CdclSolver solver(f, config);
  const SolveStatus status = solver.solve();
  EXPECT_NE(status, SolveStatus::kUnknown);
  EXPECT_EQ(solver.stats().restarts, 0u);
}

TEST(CdclConfigTest, RandomDecisionsStillCorrect) {
  SolverConfig config;
  config.random_decision_freq = 0.3;
  for (int seed = 0; seed < 5; ++seed) {
    const CnfFormula f = gen::random_ksat(12, 51, 3, seed + 500);
    config.seed = seed + 1;
    CdclSolver solver(f, config);
    const auto truth = brute_force_solve(f);
    const SolveStatus status = solver.solve();
    EXPECT_EQ(status,
              truth.has_value() ? SolveStatus::kSat : SolveStatus::kUnsat);
  }
}

TEST(CdclDeterminismTest, SameSeedSameTrace) {
  const CnfFormula f = gen::random_ksat(30, 128, 3, 9);
  CdclSolver a(f);
  CdclSolver b(f);
  a.solve();
  b.solve();
  EXPECT_EQ(a.status(), b.status());
  EXPECT_EQ(a.stats().decisions, b.stats().decisions);
  EXPECT_EQ(a.stats().conflicts, b.stats().conflicts);
  EXPECT_EQ(a.stats().work, b.stats().work);
}

// --- DPLL-specific ---------------------------------------------------------

TEST(DpllTest, BasicVerdicts) {
  CnfFormula sat;
  sat.add_dimacs_clause({1, 2});
  sat.add_dimacs_clause({-1, 2});
  DpllSolver s1(sat);
  EXPECT_EQ(s1.solve(), SolveStatus::kSat);

  CnfFormula unsat;
  unsat.add_dimacs_clause({1});
  unsat.add_dimacs_clause({-1});
  DpllSolver s2(unsat);
  EXPECT_EQ(s2.solve(), SolveStatus::kUnsat);
}

TEST(DpllTest, AgreesWithBruteForceOnSweep) {
  for (int seed = 0; seed < 15; ++seed) {
    const CnfFormula f = gen::random_ksat(10, 43, 3, seed + 31);
    DpllSolver solver(f);
    const auto truth = brute_force_solve(f);
    EXPECT_EQ(solver.solve(),
              truth.has_value() ? SolveStatus::kSat : SolveStatus::kUnsat)
        << "seed " << seed;
  }
}

TEST(DpllTest, BudgetedResumption) {
  const CnfFormula f = gen::pigeonhole_unsat(5);
  DpllSolver solver(f);
  SolveStatus status = SolveStatus::kUnknown;
  int slices = 0;
  while (status == SolveStatus::kUnknown) {
    status = solver.solve(10000);
    ASSERT_LT(++slices, 1000000);
  }
  EXPECT_EQ(status, SolveStatus::kUnsat);
}

TEST(BruteForceTest, CountsModels) {
  CnfFormula f;
  f.add_dimacs_clause({1, 2});
  // 3 of 4 assignments satisfy V1 | V2.
  EXPECT_EQ(brute_force_count(f), 3u);
  CnfFormula empty(2);
  EXPECT_EQ(brute_force_count(empty), 4u);
}

}  // namespace
}  // namespace gridsat::solver
