// Clause-exchange tests: LBD computation on hand-built conflict graphs,
// fingerprint-based duplicate suppression, the sharded publish pool, and
// verdict determinism of the thread-parallel solver across 1/2/4/8
// threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "gen/random_ksat.hpp"
#include "gen/xor_chains.hpp"
#include "solver/brute_force.hpp"
#include "solver/cdcl.hpp"
#include "solver/parallel.hpp"
#include "solver/sharing.hpp"

namespace gridsat::solver {
namespace {

using cnf::CnfFormula;
using cnf::Lit;

// --- LBD on hand-built conflict graphs --------------------------------

/// Drive the solver through a scripted decision sequence and capture the
/// first conflict's record.
ConflictRecord first_conflict(const CnfFormula& f,
                              std::vector<std::int64_t> decisions) {
  SolverConfig config;
  config.restart_base = 0;
  CdclSolver solver(f, config);
  std::size_t next = 0;
  solver.set_decision_hook([&]() {
    if (next < decisions.size()) return Lit::from_dimacs(decisions[next++]);
    return cnf::kUndefLit;
  });
  std::vector<ConflictRecord> records;
  solver.set_conflict_observer(
      [&](const ConflictRecord& rec) { records.push_back(rec); });
  (void)solver.solve(100'000);
  EXPECT_FALSE(records.empty()) << "script produced no conflict";
  return records.empty() ? ConflictRecord{} : records.front();
}

TEST(LbdTest, TwoLevelConflictHasLbdTwo) {
  // Decide V1@1, V5@2; (~1 | ~5 | 6) implies 6, (~1 | ~5 | ~6) conflicts.
  // FirstUIP resolves to (~5 | ~1): literals at levels {2, 1} => LBD 2.
  CnfFormula f(6);
  f.add_dimacs_clause({-1, -5, 6});
  f.add_dimacs_clause({-1, -5, -6});
  const ConflictRecord rec = first_conflict(f, {1, 5});
  ASSERT_EQ(rec.learned_clause.size(), 2u);
  EXPECT_EQ(rec.lbd, 2u);
  EXPECT_EQ(rec.conflict_level, 2u);
}

TEST(LbdTest, ThreeLevelConflictHasLbdThree) {
  // Decisions V1@1, V2@2, V3@3; the pair of 4-clauses conflicts at level
  // 3 and learns (~3 | ~2 | ~1) spanning three levels.
  CnfFormula f(4);
  f.add_dimacs_clause({-1, -2, -3, 4});
  f.add_dimacs_clause({-1, -2, -3, -4});
  const ConflictRecord rec = first_conflict(f, {1, 2, 3});
  ASSERT_EQ(rec.learned_clause.size(), 3u);
  EXPECT_EQ(rec.lbd, 3u);
}

TEST(LbdTest, LearnedUnitHasLbdOne) {
  // Decide V1; the binary pair conflicts immediately; the learned clause
  // is the unit (~1) — one literal, one level, LBD 1.
  CnfFormula f(2);
  f.add_dimacs_clause({-1, 2});
  f.add_dimacs_clause({-1, -2});
  const ConflictRecord rec = first_conflict(f, {1});
  ASSERT_EQ(rec.learned_clause.size(), 1u);
  EXPECT_EQ(rec.lbd, 1u);
}

TEST(LbdTest, ShareCallbackReportsSameLbdAsConflictRecord) {
  const CnfFormula f = gen::random_ksat(30, 128, 3, 11);
  // On-the-fly strengthening re-exports clauses between conflicts, which
  // would break the 1:1 pairing of conflict records with share calls that
  // this test relies on; turn it off to compare learned exports only.
  SolverConfig cfg;
  cfg.otf_subsume = false;
  CdclSolver solver(f, cfg);
  std::vector<std::uint32_t> observed;
  std::vector<std::uint32_t> shared;
  solver.set_conflict_observer([&](const ConflictRecord& rec) {
    if (observed.size() < 200) observed.push_back(rec.lbd);
  });
  solver.set_share_callback([&](const cnf::Clause& c, std::uint32_t lbd) {
    if (shared.size() < 200) {
      shared.push_back(lbd);
      // LBD can never exceed the number of literals.
      EXPECT_LE(lbd, c.size());
      EXPECT_GE(lbd, 1u);
    }
  });
  (void)solver.solve(200'000);
  ASSERT_FALSE(shared.empty());
  const std::size_t n = std::min(observed.size(), shared.size());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(observed[i], shared[i]) << "conflict " << i;
  }
}

// --- Fingerprints and duplicate suppression ---------------------------

cnf::Clause make_clause(std::initializer_list<std::int64_t> dimacs) {
  cnf::Clause c;
  for (const std::int64_t d : dimacs) c.push_back(Lit::from_dimacs(d));
  return c;
}

TEST(FingerprintTest, OrderInsensitive) {
  const cnf::Clause a = make_clause({1, -2, 3});
  const cnf::Clause b = make_clause({3, 1, -2});
  const cnf::Clause c = make_clause({-2, 3, 1});
  EXPECT_EQ(clause_fingerprint(a), clause_fingerprint(b));
  EXPECT_EQ(clause_fingerprint(a), clause_fingerprint(c));
}

TEST(FingerprintTest, DistinguishesClauses) {
  const cnf::Clause base = make_clause({1, -2, 3});
  EXPECT_NE(clause_fingerprint(base), clause_fingerprint(make_clause({1, 2, 3})));
  EXPECT_NE(clause_fingerprint(base), clause_fingerprint(make_clause({1, -2})));
  EXPECT_NE(clause_fingerprint(base),
            clause_fingerprint(make_clause({1, -2, 3, 4})));
  EXPECT_NE(clause_fingerprint(base), clause_fingerprint(make_clause({-1, 2, -3})));
  EXPECT_NE(clause_fingerprint(make_clause({1})), 0u);
}

TEST(FingerprintFilterTest, SuppressesExactAndPermutedDuplicates) {
  FingerprintFilter filter(8);
  const cnf::Clause a = make_clause({4, -7, 9});
  const cnf::Clause permuted = make_clause({9, 4, -7});
  EXPECT_TRUE(filter.insert(clause_fingerprint(a)));
  EXPECT_FALSE(filter.insert(clause_fingerprint(a)));
  EXPECT_FALSE(filter.insert(clause_fingerprint(permuted)));
  EXPECT_TRUE(filter.insert(clause_fingerprint(make_clause({4, -7}))));
}

TEST(FingerprintFilterTest, ManyDistinctInsertsMostlyAdmitted) {
  // With 2^14 slots and 4k distinct clauses, collisions in the probe
  // window should be negligible.
  FingerprintFilter filter(14);
  std::size_t admitted = 0;
  for (int i = 1; i <= 4000; ++i) {
    const cnf::Clause c = make_clause({i, -(i + 1), i + 2});
    if (filter.insert(clause_fingerprint(c))) ++admitted;
  }
  EXPECT_EQ(admitted, 4000u);
  // And every one of them is now a duplicate.
  std::size_t readmitted = 0;
  for (int i = 1; i <= 4000; ++i) {
    const cnf::Clause c = make_clause({i + 2, i, -(i + 1)});  // permuted
    if (filter.insert(clause_fingerprint(c))) ++readmitted;
  }
  EXPECT_EQ(readmitted, 0u);
}

TEST(FingerprintFilterTest, ClearStartsANewSuppressionEpoch) {
  // Without clear(), one publish suppresses a clause for the rest of the
  // run — even after every importer has evicted its copy in reduce_db().
  // clear() must make the filter forget, so the clause can ship again.
  FingerprintFilter filter(8);
  const std::uint64_t fp = clause_fingerprint(make_clause({4, -7, 9}));
  EXPECT_TRUE(filter.insert(fp));
  EXPECT_FALSE(filter.insert(fp));  // suppressed within the epoch
  filter.clear();
  EXPECT_TRUE(filter.insert(fp));  // a new epoch re-admits it
  EXPECT_FALSE(filter.insert(fp));
}

TEST(FingerprintFilterTest, ClearEmptiesAFullTable) {
  // Fill a tiny table until probe windows saturate, then clear: every
  // fingerprint must be treated as fresh again (no stale residue).
  FingerprintFilter filter(4);  // 16 slots
  for (int i = 1; i <= 16; ++i) {
    (void)filter.insert(clause_fingerprint(make_clause({i, -(i + 1)})));
  }
  filter.clear();
  std::size_t admitted = 0;
  for (int i = 1; i <= 12; ++i) {
    if (filter.insert(clause_fingerprint(make_clause({i, -(i + 1)})))) {
      ++admitted;
    }
  }
  EXPECT_EQ(admitted, 12u);
}

TEST(FingerprintFilterTest, ConcurrentInsertersAgreeOnOneWinner) {
  FingerprintFilter filter(12);
  constexpr int kClauses = 1000;
  std::atomic<int> wins{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 1; i <= kClauses; ++i) {
        const cnf::Clause c = make_clause({i, -(i + 1), i + 2});
        if (filter.insert(clause_fingerprint(c))) ++wins;
      }
    });
  }
  for (auto& t : threads) t.join();
  // Each clause is admitted exactly once across all racing publishers.
  EXPECT_EQ(wins.load(), kClauses);
}

// --- Sharded pool ------------------------------------------------------

SharedClause shared(std::initializer_list<std::int64_t> dimacs,
                    std::uint32_t lbd) {
  return SharedClause{make_clause(dimacs), lbd};
}

TEST(SharedClausePoolTest, ReaderSeesOtherShardsNotOwn) {
  SharedClausePool pool(3);
  pool.publish(0, {shared({1, 2}, 2)});
  pool.publish(1, {shared({3, 4}, 2), shared({5, 6}, 1)});

  auto cursor = pool.make_cursor();
  std::vector<SharedClause> out;
  EXPECT_EQ(pool.collect(/*self=*/2, cursor, out), 3u);
  EXPECT_EQ(out.size(), 3u);

  // Own shard is skipped.
  auto cursor0 = pool.make_cursor();
  out.clear();
  EXPECT_EQ(pool.collect(/*self=*/0, cursor0, out), 2u);
  for (const SharedClause& sc : out) {
    EXPECT_NE(sc.lits, make_clause({1, 2}));
  }
}

TEST(SharedClausePoolTest, CursorAdvancesAndSeesOnlyNews) {
  SharedClausePool pool(2);
  auto cursor = pool.make_cursor();
  std::vector<SharedClause> out;
  pool.publish(0, {shared({1, 2}, 2)});
  EXPECT_EQ(pool.collect(1, cursor, out), 1u);
  out.clear();
  EXPECT_EQ(pool.collect(1, cursor, out), 0u);  // drained
  pool.publish(0, {shared({2, 3}, 2)});
  EXPECT_EQ(pool.collect(1, cursor, out), 1u);
  EXPECT_EQ(out[0].lits, make_clause({2, 3}));
}

TEST(SharedClausePoolTest, SkipToNowIgnoresHistory) {
  SharedClausePool pool(2);
  pool.publish(0, {shared({1, 2}, 2), shared({3, 4}, 2)});
  auto cursor = pool.make_cursor();
  pool.skip_to_now(cursor);
  std::vector<SharedClause> out;
  EXPECT_EQ(pool.collect(1, cursor, out), 0u);
  pool.publish(0, {shared({5, 6}, 1)});
  EXPECT_EQ(pool.collect(1, cursor, out), 1u);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(SharedClausePoolTest, ConcurrentPublishAndCollect) {
  // Two publishers on their own shards, two readers draining; TSan-clean
  // and no clause lost or duplicated per reader.
  SharedClausePool pool(4);
  constexpr int kPerPublisher = 500;
  std::vector<std::thread> threads;
  for (int p = 0; p < 2; ++p) {
    threads.emplace_back([&pool, p] {
      for (int i = 1; i <= kPerPublisher; ++i) {
        pool.publish(static_cast<std::size_t>(p),
                     {shared({p * kPerPublisher + i, -(i + 1)}, 2)});
      }
    });
  }
  std::vector<std::size_t> collected(2, 0);
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&pool, &collected, r] {
      auto cursor = pool.make_cursor();
      std::vector<SharedClause> out;
      while (collected[static_cast<std::size_t>(r)] < 2 * kPerPublisher) {
        out.clear();
        collected[static_cast<std::size_t>(r)] +=
            pool.collect(/*self=*/2 + static_cast<std::size_t>(r), cursor, out);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(collected[0], 2u * kPerPublisher);
  EXPECT_EQ(collected[1], 2u * kPerPublisher);
  EXPECT_EQ(pool.size(), 2u * kPerPublisher);
}

// --- Verdict determinism across thread counts -------------------------

TEST(ExchangeDeterminismTest, VerdictIdenticalAcross1248Threads) {
  // A small suite of generated instances straddling the SAT/UNSAT
  // boundary; the verdict (never the model or the timing) must be
  // identical at every thread count and match brute force.
  for (const std::uint64_t seed : {3u, 21u, 77u, 140u, 251u, 304u}) {
    const CnfFormula f = gen::random_ksat(13, 55, 3, seed);
    const bool truth = brute_force_solve(f).has_value();
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      ParallelOptions options;
      options.num_threads = threads;
      options.slice_work = 5'000;  // force many cooperation points
      ParallelSolver solver(f, options);
      const ParallelResult result = solver.solve();
      EXPECT_EQ(result.status,
                truth ? SolveStatus::kSat : SolveStatus::kUnsat)
          << "seed " << seed << " threads " << threads;
      if (result.status == SolveStatus::kSat) {
        EXPECT_TRUE(cnf::is_model(f, result.model));
      }
    }
  }
}

TEST(ExchangeDeterminismTest, VerdictUnaffectedByDedupEpochLength) {
  // Re-share epochs only widen what may be shipped; the verdict must be
  // identical whether the filter forgets constantly, occasionally, or
  // never (dedup_clear_every = 0, the pre-epoch behaviour).
  for (const std::uint64_t seed : {21u, 77u, 140u}) {
    const CnfFormula f = gen::random_ksat(13, 55, 3, seed);
    const bool truth = brute_force_solve(f).has_value();
    for (const std::uint64_t epoch : {0u, 16u, 4096u}) {
      ParallelOptions options;
      options.num_threads = 4;
      options.slice_work = 5'000;
      options.dedup_clear_every = epoch;
      ParallelSolver solver(f, options);
      const ParallelResult result = solver.solve();
      EXPECT_EQ(result.status,
                truth ? SolveStatus::kSat : SolveStatus::kUnsat)
          << "seed " << seed << " epoch " << epoch;
    }
  }
}

TEST(ExchangeDeterminismTest, TinyDedupEpochKeepsCountersCoherent) {
  // With a 16-publish epoch the filter clears constantly; the accounting
  // identities must still hold (re-shares are counted as publishes).
  const CnfFormula f = gen::urquhart_like(10, 3);
  ParallelOptions options;
  options.num_threads = 4;
  options.slice_work = 10'000;
  options.dedup_clear_every = 16;
  ParallelSolver solver(f, options);
  const ParallelResult result = solver.solve();
  EXPECT_EQ(result.status, SolveStatus::kUnsat);
  EXPECT_GT(result.stats.clauses_published, 0u);
  EXPECT_LE(result.stats.clauses_imported,
            result.stats.clauses_published * (options.num_threads - 1));
}

TEST(ExchangeDeterminismTest, SharingInstanceExercisesExchangeCounters) {
  // XOR-parity instance where sharing matters: the exchange path must
  // actually run (publishes) and its accounting must stay coherent.
  const CnfFormula f = gen::urquhart_like(10, 3);
  ParallelOptions options;
  options.num_threads = 4;
  options.slice_work = 10'000;
  ParallelSolver solver(f, options);
  const ParallelResult result = solver.solve();
  EXPECT_EQ(result.status, SolveStatus::kUnsat);
  EXPECT_GT(result.stats.clauses_published, 0u);
  // Importers can only receive what was published, from at most
  // threads-1 foreign shards each.
  EXPECT_LE(result.stats.clauses_imported,
            result.stats.clauses_published * (options.num_threads - 1));
}

}  // namespace
}  // namespace gridsat::solver
