// Memory-pressure behaviour of the solver: squeeze semantics, the
// no-squeeze (2003 comparator) semantics, the emergency escalation, and —
// crucially — that destroying learned clauses under pressure never
// changes a verdict (learned clauses are redundant, §2.2: "learned
// clauses can be discarded without effecting the satisfiability").
#include <gtest/gtest.h>

#include "gen/pigeonhole.hpp"
#include "gen/random_ksat.hpp"
#include "solver/brute_force.hpp"
#include "solver/cdcl.hpp"

namespace gridsat::solver {
namespace {

TEST(MemorySemanticsTest, NoSqueezeDiesOnFirstOverflow) {
  SolverConfig config;
  config.reduce_base = 1u << 30;
  config.memory_limit_bytes = 64 * 1024;
  config.allow_memory_squeeze = false;
  CdclSolver solver(gen::pigeonhole_unsat(8), config);
  EXPECT_EQ(solver.solve(), SolveStatus::kMemOut);
  EXPECT_EQ(solver.stats().db_reductions, 0u);
}

TEST(MemorySemanticsTest, BoundedSqueezesEventuallyMemOut) {
  SolverConfig config;
  config.memory_limit_bytes = 40 * 1024;
  config.max_memory_squeezes = 4;
  CdclSolver solver(gen::pigeonhole_unsat(9), config);
  EXPECT_EQ(solver.solve(500'000'000), SolveStatus::kMemOut);
}

TEST(MemorySemanticsTest, UnlimitedSqueezesStayAliveAndStayCorrect) {
  // PHP(8,7) is refutable even when the DB is capped absurdly low; the
  // solver thrashes but must still terminate with the right answer.
  SolverConfig config;
  config.memory_limit_bytes = 48 * 1024;
  config.max_memory_squeezes = 0;
  CdclSolver solver(gen::pigeonhole_unsat(7), config);
  EXPECT_EQ(solver.solve(), SolveStatus::kUnsat);
  EXPECT_GT(solver.stats().db_reductions, 0u);
}

class SqueezeCorrectnessSweep : public testing::TestWithParam<int> {};

TEST_P(SqueezeCorrectnessSweep, VerdictUnchangedUnderMemoryPressure) {
  const int seed = GetParam();
  const auto f = gen::random_ksat(14, 59, 3, seed * 227 + 9);
  const bool truth = brute_force_solve(f).has_value();

  SolverConfig squeezed;
  squeezed.memory_limit_bytes = 8 * 1024;  // brutal
  squeezed.max_memory_squeezes = 0;
  CdclSolver solver(f, squeezed);
  const SolveStatus status = solver.solve();
  EXPECT_EQ(status, truth ? SolveStatus::kSat : SolveStatus::kUnsat)
      << "seed " << seed;
  if (status == SolveStatus::kSat) {
    EXPECT_TRUE(is_model(f, solver.model()));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SqueezeCorrectnessSweep, testing::Range(0, 15));

TEST(MemorySemanticsTest, SqueezeWithSharingStillSound) {
  // Clauses exported before a squeeze must remain valid even though the
  // exporter later deleted them.
  const auto f = gen::pigeonhole_unsat(6);
  SolverConfig config;
  config.memory_limit_bytes = 24 * 1024;
  config.max_memory_squeezes = 0;
  CdclSolver donor(f, config);
  std::vector<cnf::Clause> shared;
  donor.set_share_callback([&](const cnf::Clause& c, std::uint32_t) {
    if (c.size() <= 8 && shared.size() < 100) shared.push_back(c);
  });
  EXPECT_EQ(donor.solve(), SolveStatus::kUnsat);
  ASSERT_FALSE(shared.empty());

  CdclSolver receiver(f);
  receiver.import_clauses(shared);
  EXPECT_EQ(receiver.solve(), SolveStatus::kUnsat);
}

TEST(MemorySemanticsTest, PeakBytesRespectsCap) {
  SolverConfig config;
  config.memory_limit_bytes = 256 * 1024;
  config.max_memory_squeezes = 0;
  config.reduce_base = 1u << 30;
  CdclSolver solver(gen::pigeonhole_unsat(8), config);
  (void)solver.solve(20'000'000);
  // The arena may overshoot transiently within one conflict, but the
  // recorded peak stays within the limit plus one clause's worth.
  EXPECT_LT(solver.stats().peak_db_bytes, 320 * 1024u);
}

}  // namespace
}  // namespace gridsat::solver
