// Reproduces the paper's §2.3 / Figure 1 walkthrough literally:
//   * clause 9 puts V14 at decision level 0,
//   * the scripted decisions V10, V7, ~V8, ~V9, V6, V11 cascade at level 6
//     into a conflict on V3 (clauses 6 and 7),
//   * FirstUIP is V5; the learned clause is ~V10 + ~V7 + V8 + V9 + ~V5,
//   * the solver backjumps to level 4 (the level of ~V9),
//   * after the backjump the learned clause implies ~V5 at level 4,
// and the Figure-2 split pruning: client A removes clauses 8 and 9;
// client B (branch ~V10) removes clause 7, clause 9, and the learned
// clause.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>

#include "gen/paper_example.hpp"
#include "solver/brute_force.hpp"
#include "solver/cdcl.hpp"

namespace gridsat::solver {
namespace {

using cnf::LBool;
using cnf::Lit;

class PaperExampleTest : public testing::Test {
 protected:
  void SetUp() override {
    formula_ = gen::paper_example_formula();
    decisions_ = gen::paper_example_decisions();
  }

  /// Run a solver with the scripted decisions until the first conflict
  /// has been analyzed, returning the record.
  ConflictRecord run_to_first_conflict(CdclSolver& solver) {
    std::size_t next = 0;
    solver.set_decision_hook([&]() {
      return next < decisions_.size() ? decisions_[next++] : cnf::kUndefLit;
    });
    std::optional<ConflictRecord> record;
    solver.set_conflict_observer([&](const ConflictRecord& rec) {
      if (!record.has_value()) record = rec;
    });
    while (!record.has_value()) {
      const SolveStatus status = solver.solve(1);
      if (status != SolveStatus::kUnknown) break;
    }
    // Both hooks capture locals of this function by reference; detach them
    // before returning so later solve() calls on the same solver don't
    // invoke dangling captures.
    solver.set_decision_hook({});
    solver.set_conflict_observer({});
    EXPECT_TRUE(record.has_value()) << "scripted run produced no conflict";
    return record.value_or(ConflictRecord{});
  }

  cnf::CnfFormula formula_;
  std::vector<Lit> decisions_;
};

TEST_F(PaperExampleTest, UnitClausePutsV14AtLevelZero) {
  CdclSolver solver(formula_);
  (void)solver.solve(1);  // at least one propagation pass
  EXPECT_EQ(solver.value(14), LBool::kTrue);
  EXPECT_EQ(solver.level_of(14), 0u);
}

TEST_F(PaperExampleTest, ScriptedDecisionsCascadeToConflictAtLevel6) {
  CdclSolver solver(formula_);
  const ConflictRecord rec = run_to_first_conflict(solver);
  EXPECT_EQ(rec.conflict_level, 6u);
  // The conflicting clause is clause 6 or clause 7 (both imply V3, to
  // opposite values).
  const bool mentions_v3 =
      std::any_of(rec.conflicting_clause.begin(), rec.conflicting_clause.end(),
                  [](Lit l) { return l.var() == 3; });
  EXPECT_TRUE(mentions_v3);
}

TEST_F(PaperExampleTest, FirstUipIsV5) {
  CdclSolver solver(formula_);
  const ConflictRecord rec = run_to_first_conflict(solver);
  EXPECT_EQ(rec.uip, Lit(5, false)) << "FirstUIP should be the V5 assignment";
}

TEST_F(PaperExampleTest, LearnedClauseMatchesPaper) {
  CdclSolver solver(formula_);
  const ConflictRecord rec = run_to_first_conflict(solver);
  // ~V10 + ~V7 + V8 + V9 + ~V5, with the asserting literal ~V5 first.
  ASSERT_EQ(rec.learned_clause.size(), 5u);
  EXPECT_EQ(rec.learned_clause[0], Lit(5, true));
  std::vector<Lit> rest(rec.learned_clause.begin() + 1,
                        rec.learned_clause.end());
  std::sort(rest.begin(), rest.end());
  std::vector<Lit> expected{Lit(7, true), Lit(8, false), Lit(9, false),
                            Lit(10, true)};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(rest, expected);
}

TEST_F(PaperExampleTest, BackjumpsToLevelFour) {
  CdclSolver solver(formula_);
  const ConflictRecord rec = run_to_first_conflict(solver);
  EXPECT_EQ(rec.backjump_level, 4u) << "the level of the ~V9 decision";
}

TEST_F(PaperExampleTest, LearnedClauseImpliesNotV5AfterBackjump) {
  CdclSolver solver(formula_);
  (void)run_to_first_conflict(solver);
  // Immediately after the conflict is handled the solver sits at level 4
  // with ~V5 implied by the learned clause (the paper's closing remark of
  // §2.3).
  EXPECT_EQ(solver.decision_level(), 4u);
  EXPECT_EQ(solver.value(5), LBool::kFalse);
  EXPECT_EQ(solver.level_of(5), 4u);
}

TEST_F(PaperExampleTest, InstanceIsSatisfiableInTheEnd) {
  const auto truth = brute_force_solve(formula_);
  ASSERT_TRUE(truth.has_value());
  CdclSolver solver(formula_);
  ASSERT_EQ(solver.solve(), SolveStatus::kSat);
  EXPECT_TRUE(is_model(formula_, solver.model()));
}

TEST_F(PaperExampleTest, Figure2SplitPrunesAsDescribed) {
  // Drive to the post-conflict state (stack of Figure 2), then split.
  CdclSolver solver(formula_);
  (void)run_to_first_conflict(solver);
  ASSERT_TRUE(solver.can_split());
  const std::size_t clauses_before = 9;  // original formula

  const Subproblem branch_b = solver.split();
  // Client B's units: V14 (level 0) plus the tainted assumption ~V10.
  ASSERT_EQ(branch_b.units.size(), 2u);
  EXPECT_EQ(branch_b.units[0].lit, Lit(14, false));
  EXPECT_FALSE(branch_b.units[0].tainted);
  EXPECT_EQ(branch_b.units[1].lit, Lit(10, true));
  EXPECT_TRUE(branch_b.units[1].tainted);

  // The shipped clause set already excludes clause 9 (satisfied by V14 at
  // the donor's level 0).
  EXPECT_LT(branch_b.clauses.size(), clauses_before + 1);
  for (const auto& clause : branch_b.clauses) {
    EXPECT_FALSE(clause == cnf::Clause{Lit(14, false)})
        << "clause 9 should have been pruned from the split payload";
  }

  // Client B prunes clauses satisfied by ~V10 on arrival: clause 7 and
  // the learned clause (and, in this reconstruction, clause 8 too).
  CdclSolver client_b(branch_b);
  (void)client_b.solve(1);
  EXPECT_EQ(client_b.value(10), LBool::kFalse);
  EXPECT_TRUE(client_b.tainted(10));

  // Client A folded level 1 into level 0: V10 and ~V13 now live at level
  // 0 and V10 is tainted (it was a decision turned assumption).
  EXPECT_EQ(solver.value(10), LBool::kTrue);
  EXPECT_EQ(solver.level_of(10), 0u);
  EXPECT_TRUE(solver.tainted(10));
  EXPECT_EQ(solver.value(13), LBool::kFalse);
  EXPECT_EQ(solver.level_of(13), 0u);

  // Both branches resolve, and exactly one of them is where the model
  // lives (the formula is SAT; the split partitions the space).
  const SolveStatus status_a = solver.solve();
  const SolveStatus status_b = client_b.solve();
  EXPECT_TRUE(status_a == SolveStatus::kSat || status_b == SolveStatus::kSat);
}

TEST_F(PaperExampleTest, SplitClientAKeepsSearchingBelowFold) {
  // After the fold client A's remaining decision levels shift down by
  // one: old level 2 (V7) becomes level 1, etc.
  CdclSolver solver(formula_);
  (void)run_to_first_conflict(solver);
  (void)solver.split();
  EXPECT_EQ(solver.level_of(7), 1u);
  EXPECT_EQ(solver.level_of(8), 2u);
  EXPECT_EQ(solver.level_of(9), 3u);
  EXPECT_EQ(solver.decision_level(), 3u);
  EXPECT_EQ(solver.check_invariants(), "");
}

}  // namespace
}  // namespace gridsat::solver
