// Thread-parallel solver tests: verdict agreement with brute force /
// sequential CDCL across thread counts, model validity, split/share
// bookkeeping, and stress with many small subproblems.
#include <gtest/gtest.h>

#include "gen/pigeonhole.hpp"
#include "gen/random_ksat.hpp"
#include "gen/xor_chains.hpp"
#include "solver/brute_force.hpp"
#include "solver/parallel.hpp"

namespace gridsat::solver {
namespace {

using cnf::CnfFormula;

ParallelOptions options_with(std::size_t threads,
                             std::uint64_t slice = 20'000) {
  ParallelOptions options;
  options.num_threads = threads;
  options.slice_work = slice;  // small slices force cooperation paths
  return options;
}

class ParallelAgreement
    : public testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ParallelAgreement, MatchesBruteForce) {
  const auto [threads, seed] = GetParam();
  const CnfFormula f = gen::random_ksat(
      14, 59, 3, static_cast<std::uint64_t>(seed) * 149 + 17);
  const bool truth = brute_force_solve(f).has_value();
  ParallelSolver solver(f, options_with(static_cast<std::size_t>(threads)));
  const ParallelResult result = solver.solve();
  ASSERT_NE(result.status, SolveStatus::kUnknown);
  EXPECT_EQ(result.status,
            truth ? SolveStatus::kSat : SolveStatus::kUnsat)
      << "threads " << threads << " seed " << seed;
  if (result.status == SolveStatus::kSat) {
    EXPECT_TRUE(is_model(f, result.model));
  }
  EXPECT_EQ(result.stats.threads, static_cast<std::size_t>(threads));
}

INSTANTIATE_TEST_SUITE_P(Sweep, ParallelAgreement,
                         testing::Combine(testing::Values(1, 2, 4),
                                          testing::Range(0, 8)));

TEST(ParallelSolverTest, HardUnsatSplitsAcrossWorkers) {
  const CnfFormula f = gen::pigeonhole_unsat(8);
  ParallelSolver solver(f, options_with(4, 50'000));
  const ParallelResult result = solver.solve();
  EXPECT_EQ(result.status, SolveStatus::kUnsat);
  EXPECT_GT(result.stats.splits, 0u);
  EXPECT_GT(result.stats.subproblems_refuted, 1u);
  EXPECT_GT(result.stats.total_work, 0u);
}

TEST(ParallelSolverTest, SharingHappens) {
  const CnfFormula f = gen::urquhart_like(12, 3);
  ParallelSolver solver(f, options_with(3, 30'000));
  const ParallelResult result = solver.solve();
  EXPECT_EQ(result.status, SolveStatus::kUnsat);
  EXPECT_GT(result.stats.clauses_published, 0u);
}

TEST(ParallelSolverTest, SatisfiableInstanceYieldsVerifiedModel) {
  const CnfFormula f = gen::random_ksat_planted(80, 330, 3, 5);
  ParallelSolver solver(f, options_with(4));
  const ParallelResult result = solver.solve();
  ASSERT_EQ(result.status, SolveStatus::kSat);
  EXPECT_TRUE(is_model(f, result.model));
}

TEST(ParallelSolverTest, TrivialInstances) {
  CnfFormula empty(3);
  ParallelSolver a(empty, options_with(2));
  EXPECT_EQ(a.solve().status, SolveStatus::kSat);

  CnfFormula contradiction;
  contradiction.add_dimacs_clause({1});
  contradiction.add_dimacs_clause({-1});
  ParallelSolver b(contradiction, options_with(2));
  EXPECT_EQ(b.solve().status, SolveStatus::kUnsat);
}

TEST(ParallelSolverTest, RepeatedRunsAgreeOnVerdict) {
  // Timing nondeterminism must never flip a verdict.
  const CnfFormula f = gen::random_ksat(16, 70, 3, 321);
  const bool truth = brute_force_solve(f).has_value();
  for (int run = 0; run < 5; ++run) {
    ParallelSolver solver(f, options_with(4, 10'000));
    EXPECT_EQ(solver.solve().status,
              truth ? SolveStatus::kSat : SolveStatus::kUnsat)
        << "run " << run;
  }
}

}  // namespace
}  // namespace gridsat::solver
