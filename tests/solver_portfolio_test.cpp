// Portfolio / hybrid racing tests: seed decorrelation (the old
// `seed + worker_index` scheme made adjacent base seeds share workers),
// cancellation latency through the propagation-loop flag, diversified
// restart/polarity heuristics vs brute force, and full ParallelSolver
// races with proof certification.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "gen/pigeonhole.hpp"
#include "gen/random_ksat.hpp"
#include "gen/xor_chains.hpp"
#include "solver/brute_force.hpp"
#include "solver/diversify.hpp"
#include "solver/parallel.hpp"

namespace gridsat::solver {
namespace {

using cnf::CnfFormula;

// ---------------------------------------------------------------- seeds

TEST(DecorrelatedSeedTest, AdjacentBaseSeedsNeverShareSlots) {
  // The bug: seed + worker_index means (base=1, slot=1) and
  // (base=2, slot=0) run the identical decision stream. Any (base, slot)
  // pairs with equal sums must now map to distinct seeds.
  std::set<std::uint64_t> seen;
  for (std::uint64_t base = 1; base <= 8; ++base) {
    for (std::uint64_t slot = 0; slot < 8; ++slot) {
      seen.insert(decorrelated_seed(base, slot));
    }
  }
  EXPECT_EQ(seen.size(), 64u);  // all 64 (base, slot) pairs distinct
  EXPECT_NE(decorrelated_seed(1, 1), decorrelated_seed(2, 0));
  // Determinism: same inputs, same seed.
  EXPECT_EQ(decorrelated_seed(5, 3), decorrelated_seed(5, 3));
}

/// First `limit` learned clauses under the given seed, with enough
/// random branching that the RNG stream shows up in the search.
std::vector<std::vector<cnf::Lit>> conflict_prefix(const CnfFormula& f,
                                                   std::uint64_t seed,
                                                   std::size_t limit) {
  SolverConfig config;
  config.seed = seed;
  config.random_decision_freq = 0.5;
  CdclSolver solver(f, config);
  std::vector<std::vector<cnf::Lit>> learned;
  std::atomic<bool> stop{false};
  solver.set_conflict_observer(
      [&learned, &stop, limit](const ConflictRecord& rec) {
        if (learned.size() < limit) learned.push_back(rec.learned_clause);
        if (learned.size() >= limit) stop.store(true);
      });
  solver.set_cancel_flag(&stop);
  solver.solve();
  return learned;
}

TEST(DecorrelatedSeedTest, AdjacentBaseSeedsGiveDisjointDecisionStreams) {
  // Under the old scheme these two (base, slot) pairs collided; their
  // searches must now diverge. Identical pairs must still replay.
  const CnfFormula f = gen::random_ksat(24, 110, 3, 99);
  const auto worker1_of_base1 =
      conflict_prefix(f, decorrelated_seed(1, 1), 20);
  const auto worker0_of_base2 =
      conflict_prefix(f, decorrelated_seed(2, 0), 20);
  const auto worker1_of_base1_again =
      conflict_prefix(f, decorrelated_seed(1, 1), 20);
  ASSERT_FALSE(worker1_of_base1.empty());
  EXPECT_NE(worker1_of_base1, worker0_of_base2);
  EXPECT_EQ(worker1_of_base1, worker1_of_base1_again);
}

// --------------------------------------------------------- cancellation

TEST(CancelFlagTest, PresetFlagStopsBeforeAnySearch) {
  const CnfFormula f = gen::pigeonhole_unsat(7);
  CdclSolver solver(f, {});
  std::atomic<bool> cancel{true};
  solver.set_cancel_flag(&cancel);
  EXPECT_EQ(solver.solve(), SolveStatus::kUnknown);
  EXPECT_EQ(solver.stats().conflicts, 0u);
}

TEST(CancelFlagTest, CancelledWorkerStopsWithinOnePropagationBatch) {
  // Trip the flag from inside the search (as a winning co-racer would)
  // and check the loser abandons the slice immediately instead of
  // running the slice budget out.
  const CnfFormula f = gen::pigeonhole_unsat(8);
  CdclSolver solver(f, {});
  std::atomic<bool> cancel{false};
  const std::uint64_t kTrip = 50;
  std::uint64_t observed = 0;
  solver.set_conflict_observer(
      [&cancel, &observed, kTrip](const ConflictRecord&) {
        if (++observed >= kTrip) cancel.store(true);
      });
  solver.set_cancel_flag(&cancel);
  const SolveStatus status = solver.solve();  // unbounded budget
  EXPECT_EQ(status, SolveStatus::kUnknown);
  // The flag is polled at the top of the search loop: at most one more
  // propagate/analyze round may complete after the observer fires.
  EXPECT_GE(solver.stats().conflicts, kTrip);
  EXPECT_LE(solver.stats().conflicts, kTrip + 1);
}

TEST(CancelFlagTest, ClearedFlagLetsTheSolveFinish) {
  const CnfFormula f = gen::random_ksat(12, 50, 3, 5);
  const bool truth = brute_force_solve(f).has_value();
  CdclSolver solver(f, {});
  std::atomic<bool> cancel{false};
  solver.set_cancel_flag(&cancel);
  EXPECT_EQ(solver.solve(),
            truth ? SolveStatus::kSat : SolveStatus::kUnsat);
}

// ------------------------------------------------- diversified configs

TEST(DiversifyTest, SlotZeroKeepsHeuristicsButReseeds) {
  SolverConfig base;
  base.seed = 7;
  const SolverConfig d = diversified_config(base, 0, 3);
  EXPECT_EQ(d.restart_policy, base.restart_policy);
  EXPECT_EQ(d.polarity_init, base.polarity_init);
  EXPECT_EQ(d.phase_saving, base.phase_saving);
  EXPECT_NE(d.seed, base.seed);
  EXPECT_EQ(d.seed, decorrelated_seed(7, 3));
}

TEST(DiversifyTest, SlotsDifferAndRestartZeroStaysDisabled) {
  SolverConfig base;
  std::set<std::uint64_t> seeds;
  for (std::size_t slot = 0; slot < 9; ++slot) {
    seeds.insert(diversified_config(base, slot, slot).seed);
  }
  EXPECT_EQ(seeds.size(), 9u);
  base.restart_base = 0;  // restarts disabled stays disabled in every slot
  for (std::size_t slot = 1; slot < 9; ++slot) {
    EXPECT_EQ(diversified_config(base, slot, slot).restart_base, 0u);
  }
}

class HeuristicAgreement
    : public testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(HeuristicAgreement, EveryProfileMatchesBruteForce) {
  // Each diversification row must stay a *correct* solver, including the
  // previously dead random_decision_freq > 0 paths.
  const auto [slot, seed] = GetParam();
  const CnfFormula f = gen::random_ksat(
      13, 55, 3, static_cast<std::uint64_t>(seed) * 53 + 11);
  const bool truth = brute_force_solve(f).has_value();
  SolverConfig base;
  base.seed = static_cast<std::uint64_t>(seed);
  CdclSolver solver(
      f, diversified_config(base, static_cast<std::size_t>(slot), 0));
  const SolveStatus status = solver.solve();
  EXPECT_EQ(status, truth ? SolveStatus::kSat : SolveStatus::kUnsat)
      << "profile slot " << slot << " seed " << seed;
  if (status == SolveStatus::kSat) {
    EXPECT_TRUE(is_model(f, solver.model()));
  }
}

INSTANTIATE_TEST_SUITE_P(Profiles, HeuristicAgreement,
                         testing::Combine(testing::Range(0, 9),
                                          testing::Range(0, 3)));

// ----------------------------------------------------- parallel racing

ParallelOptions race_options(ParallelMode mode, std::size_t threads,
                             std::size_t race_width = 2) {
  ParallelOptions options;
  options.mode = mode;
  options.num_threads = threads;
  options.race_width = race_width;
  options.slice_work = 20'000;
  return options;
}

class RaceAgreement
    : public testing::TestWithParam<std::tuple<ParallelMode, int, int>> {};

TEST_P(RaceAgreement, MatchesBruteForce) {
  const auto [mode, threads, seed] = GetParam();
  const CnfFormula f = gen::random_ksat(
      14, 59, 3, static_cast<std::uint64_t>(seed) * 149 + 17);
  const bool truth = brute_force_solve(f).has_value();
  ParallelSolver solver(
      f, race_options(mode, static_cast<std::size_t>(threads)));
  const ParallelResult result = solver.solve();
  ASSERT_NE(result.status, SolveStatus::kUnknown);
  EXPECT_EQ(result.status, truth ? SolveStatus::kSat : SolveStatus::kUnsat)
      << to_string(mode) << " threads " << threads << " seed " << seed;
  if (result.status == SolveStatus::kSat) {
    EXPECT_TRUE(is_model(f, result.model));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RaceAgreement,
    testing::Combine(testing::Values(ParallelMode::kPortfolio,
                                     ParallelMode::kHybrid),
                     testing::Values(1, 2, 4), testing::Range(0, 6)));

TEST(RaceTest, PortfolioUnsatCancelsExactlyTheLosers) {
  // One cohort of 4 racers on one (root) round: the winner claims, the
  // other three must be cancelled — no more, no fewer.
  const CnfFormula f = gen::urquhart_like(12, 3);
  ParallelSolver solver(f, race_options(ParallelMode::kPortfolio, 4));
  const ParallelResult result = solver.solve();
  EXPECT_EQ(result.status, SolveStatus::kUnsat);
  EXPECT_EQ(result.stats.races_cancelled, 3u);
  EXPECT_EQ(result.stats.subproblems_refuted, 1u);
  EXPECT_EQ(result.stats.splits, 0u);  // portfolio never splits
}

TEST(RaceTest, HybridSplitsAndRaces) {
  const CnfFormula f = gen::pigeonhole_unsat(8);
  ParallelSolver solver(f, race_options(ParallelMode::kHybrid, 4, 2));
  const ParallelResult result = solver.solve();
  EXPECT_EQ(result.status, SolveStatus::kUnsat);
  EXPECT_GT(result.stats.splits, 0u);
  EXPECT_GT(result.stats.subproblems_refuted, 1u);
}

TEST(RaceTest, RepeatedRaceRunsAgreeOnVerdict) {
  const CnfFormula f = gen::random_ksat(16, 70, 3, 321);
  const bool truth = brute_force_solve(f).has_value();
  for (const ParallelMode mode :
       {ParallelMode::kPortfolio, ParallelMode::kHybrid}) {
    for (int run = 0; run < 3; ++run) {
      ParallelSolver solver(f, race_options(mode, 4));
      EXPECT_EQ(solver.solve().status,
                truth ? SolveStatus::kSat : SolveStatus::kUnsat)
          << to_string(mode) << " run " << run;
    }
  }
}

TEST(RaceTest, PortfolioUnsatProofCertifies) {
  if (!kProofCompiledIn) GTEST_SKIP() << "built with GRIDSAT_PROOF=OFF";
  const CnfFormula f = gen::pigeonhole_unsat(7);
  ParallelOptions options = race_options(ParallelMode::kPortfolio, 4);
  options.solver.log_proof = true;
  ParallelSolver solver(f, options);
  const ParallelResult result = solver.solve();
  ASSERT_EQ(result.status, SolveStatus::kUnsat);
  ASSERT_TRUE(result.proof != nullptr);
  ASSERT_TRUE(result.proof_stitched) << result.proof_error;
  const ProofCheckResult check = certify(f, *result.proof);
  EXPECT_TRUE(check.valid) << check.message << " at step " << check.failed_step;
}

TEST(RaceTest, HybridUnsatProofCertifies) {
  if (!kProofCompiledIn) GTEST_SKIP() << "built with GRIDSAT_PROOF=OFF";
  // Races + splits + losers publishing into the shared log: the stitch
  // must still close the tree (duplicate/late leaves are pruned).
  const CnfFormula f = gen::pigeonhole_unsat(8);
  ParallelOptions options = race_options(ParallelMode::kHybrid, 4, 2);
  options.solver.log_proof = true;
  ParallelSolver solver(f, options);
  const ParallelResult result = solver.solve();
  ASSERT_EQ(result.status, SolveStatus::kUnsat);
  ASSERT_TRUE(result.proof != nullptr);
  ASSERT_TRUE(result.proof_stitched) << result.proof_error;
  const ProofCheckResult check = certify(f, *result.proof);
  EXPECT_TRUE(check.valid) << check.message << " at step " << check.failed_step;
}

TEST(RaceTest, TrivialInstancesEveryMode) {
  for (const ParallelMode mode :
       {ParallelMode::kPortfolio, ParallelMode::kHybrid}) {
    CnfFormula empty(3);
    ParallelSolver a(empty, race_options(mode, 2));
    EXPECT_EQ(a.solve().status, SolveStatus::kSat) << to_string(mode);

    CnfFormula contradiction;
    contradiction.add_dimacs_clause({1});
    contradiction.add_dimacs_clause({-1});
    ParallelSolver b(contradiction, race_options(mode, 2));
    EXPECT_EQ(b.solve().status, SolveStatus::kUnsat) << to_string(mode);
  }
}

TEST(ParallelModeTest, ParseRoundTrips) {
  ParallelMode mode = ParallelMode::kSplit;
  for (const ParallelMode m : {ParallelMode::kSplit, ParallelMode::kPortfolio,
                               ParallelMode::kHybrid}) {
    ASSERT_TRUE(parse_parallel_mode(to_string(m), mode));
    EXPECT_EQ(mode, m);
  }
  EXPECT_FALSE(parse_parallel_mode("raced", mode));
}

}  // namespace
}  // namespace gridsat::solver
