// Preprocessor tests: each technique on crafted instances, equisatisfiability
// and model reconstruction on random sweeps, and interaction with the
// CDCL solver (preprocess-then-solve agrees with direct solving).
#include <gtest/gtest.h>

#include "gen/graph_color.hpp"
#include "gen/pigeonhole.hpp"
#include "gen/random_ksat.hpp"
#include "solver/brute_force.hpp"
#include "solver/cdcl.hpp"
#include "solver/preprocess.hpp"

namespace gridsat::solver {
namespace {

using cnf::CnfFormula;
using cnf::LBool;
using cnf::Lit;

TEST(PreprocessTest, UnitClosure) {
  CnfFormula f;
  f.add_dimacs_clause({1});
  f.add_dimacs_clause({-1, 2});
  f.add_dimacs_clause({-2, 3});
  f.add_dimacs_clause({3, 4});  // satisfied once V3 is forced
  const PreprocessResult r = preprocess(f);
  EXPECT_FALSE(r.unsat);
  EXPECT_EQ(r.simplified.num_clauses(), 0u);
  EXPECT_EQ(r.forced.size(), 3u);
  EXPECT_EQ(r.stats.units_propagated, 3u);
}

TEST(PreprocessTest, UnitContradictionDetected) {
  CnfFormula f;
  f.add_dimacs_clause({1});
  f.add_dimacs_clause({-1, 2});
  f.add_dimacs_clause({-2});
  const PreprocessResult r = preprocess(f);
  EXPECT_TRUE(r.unsat);
}

TEST(PreprocessTest, PureLiteralElimination) {
  CnfFormula f;
  f.add_dimacs_clause({1, 2});
  f.add_dimacs_clause({1, 3});
  f.add_dimacs_clause({-2, -3});
  // V1 occurs only positively: pure; its two clauses vanish.
  PreprocessOptions options;
  options.variable_elimination = false;
  const PreprocessResult r = preprocess(f, options);
  EXPECT_GE(r.stats.pure_literals, 1u);
  for (const auto& clause : r.simplified.clauses()) {
    for (const Lit l : clause) EXPECT_NE(l.var(), 1u);
  }
}

TEST(PreprocessTest, SubsumptionRemovesSuperset) {
  CnfFormula f;
  f.add_dimacs_clause({1, 2});
  f.add_dimacs_clause({1, 2, 3});
  f.add_dimacs_clause({-1, -2, -3});  // keep things impure
  PreprocessOptions options;
  options.pure_literals = false;
  options.variable_elimination = false;
  options.strengthening = false;
  const PreprocessResult r = preprocess(f, options);
  EXPECT_EQ(r.stats.subsumed, 1u);
  EXPECT_EQ(r.simplified.num_clauses(), 2u);
}

TEST(PreprocessTest, StrengtheningShrinksClause) {
  // (1 2) and (-1 2 3): self-subsuming resolution on V1 turns the second
  // into (2 3).
  CnfFormula f;
  f.add_dimacs_clause({1, 2});
  f.add_dimacs_clause({-1, 2, 3});
  f.add_dimacs_clause({-2, -3});
  f.add_dimacs_clause({-1, -2, 3});
  PreprocessOptions options;
  options.pure_literals = false;
  options.variable_elimination = false;
  const PreprocessResult r = preprocess(f, options);
  EXPECT_GE(r.stats.strengthened, 1u);
}

TEST(PreprocessTest, TautologyAndDuplicateRemoval) {
  CnfFormula f;
  f.add_dimacs_clause({1, -1, 2});
  f.add_dimacs_clause({2, 3});
  f.add_dimacs_clause({3, 2});
  f.add_dimacs_clause({-2, -3});
  const PreprocessResult r = preprocess(f);
  EXPECT_EQ(r.stats.tautologies, 1u);
  EXPECT_EQ(r.stats.duplicates, 1u);
}

TEST(PreprocessTest, VariableEliminationFires) {
  // V1 has one positive and one negative occurrence: the single
  // resolvent replaces two clauses.
  CnfFormula f;
  f.add_dimacs_clause({1, 2});
  f.add_dimacs_clause({-1, 3});
  f.add_dimacs_clause({-2, -3});
  f.add_dimacs_clause({2, -3});
  PreprocessOptions options;  // isolate BVE
  options.pure_literals = false;
  options.subsumption = false;
  options.strengthening = false;
  const PreprocessResult r = preprocess(f, options);
  EXPECT_GE(r.stats.variables_eliminated, 1u);
  EXPECT_FALSE(r.unsat);
}

class PreprocessEquivalenceSweep : public testing::TestWithParam<int> {};

TEST_P(PreprocessEquivalenceSweep, PreservesSatisfiabilityAndReconstructs) {
  const int seed = GetParam();
  const CnfFormula f = gen::random_ksat(14, 56, 3, seed * 379 + 11);
  const bool truth = brute_force_solve(f).has_value();

  const PreprocessResult pre = preprocess(f);
  if (pre.unsat) {
    EXPECT_FALSE(truth) << "seed " << seed;
    return;
  }
  CdclSolver solver(pre.simplified);
  const SolveStatus status = solver.solve();
  EXPECT_EQ(status, truth ? SolveStatus::kSat : SolveStatus::kUnsat)
      << "seed " << seed;
  if (status == SolveStatus::kSat) {
    const cnf::Assignment model = reconstruct_model(pre, solver.model());
    EXPECT_TRUE(is_model(f, model))
        << "seed " << seed << ": reconstructed model invalid on ORIGINAL";
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PreprocessEquivalenceSweep,
                         testing::Range(0, 30));

TEST(PreprocessTest, PigeonholeShrinksButStaysUnsat) {
  const CnfFormula f = gen::pigeonhole_unsat(5);
  const PreprocessResult r = preprocess(f);
  CdclSolver solver(r.simplified);
  EXPECT_TRUE(r.unsat || solver.solve() == SolveStatus::kUnsat);
}

TEST(PreprocessTest, ColoringInstanceShrinks) {
  const CnfFormula f = gen::graph_coloring(30, 70, 3, 3);
  const PreprocessResult r = preprocess(f);
  // BVE may lengthen individual clauses, but the clause count only drops.
  EXPECT_LE(r.stats.clauses_out, r.stats.clauses_in);
  CdclSolver direct(f);
  const SolveStatus truth = direct.solve();
  if (r.unsat) {
    EXPECT_EQ(truth, SolveStatus::kUnsat);
  } else {
    CdclSolver after(r.simplified);
    EXPECT_EQ(after.solve(), truth);
  }
}

TEST(PreprocessTest, OptionsDisableEverything) {
  PreprocessOptions off;
  off.unit_propagation = false;
  off.pure_literals = false;
  off.subsumption = false;
  off.strengthening = false;
  off.variable_elimination = false;
  CnfFormula f;  // no duplicates/tautologies: load-time cleanup is a no-op
  f.add_dimacs_clause({1, 2});
  f.add_dimacs_clause({-1, 3});
  f.add_dimacs_clause({-2, -3});
  const PreprocessResult r = preprocess(f, off);
  EXPECT_EQ(r.simplified.num_clauses(), f.num_clauses());
  EXPECT_TRUE(r.stack.empty());
}

TEST(PreprocessTest, EmptyFormulaTrivial) {
  const CnfFormula f(5);
  const PreprocessResult r = preprocess(f);
  EXPECT_FALSE(r.unsat);
  EXPECT_EQ(r.simplified.num_clauses(), 0u);
}

}  // namespace
}  // namespace gridsat::solver
