// Proof logging / checking tests: recorded refutations verify; corrupted
// ones are rejected; every clause a split solver shares is RUP against
// the ORIGINAL formula (the mechanical witness of GridSAT's sharing
// soundness); DRAT rendering round-trips basics.
#include <gtest/gtest.h>

#include <optional>
#include <sstream>

#include "gen/graph_color.hpp"
#include "gen/pigeonhole.hpp"
#include "gen/random_ksat.hpp"
#include "gen/xor_chains.hpp"
#include "solver/brute_force.hpp"
#include "solver/cdcl.hpp"
#include "solver/parallel.hpp"
#include "solver/proof.hpp"

namespace gridsat::solver {
namespace {

using cnf::CnfFormula;
using cnf::Lit;

SolverConfig proof_config() {
  SolverConfig config;
  config.log_proof = true;
  return config;
}

// Tests that need the solver itself to emit DRUP steps are meaningless
// when the hooks are compiled out (-DGRIDSAT_PROOF=OFF).
#define REQUIRE_PROOF_HOOKS() \
  if (!kProofCompiledIn) GTEST_SKIP() << "GRIDSAT_PROOF is off"

TEST(ProofTest, PigeonholeRefutationChecks) {
  REQUIRE_PROOF_HOOKS();
  const CnfFormula f = gen::pigeonhole_unsat(5);
  CdclSolver solver(f, proof_config());
  ASSERT_EQ(solver.solve(), SolveStatus::kUnsat);
  ASSERT_TRUE(solver.proof().ends_with_empty_clause());
  const ProofCheckResult result = check_unsat_proof(f, solver.proof());
  EXPECT_TRUE(result.valid) << result.message;
  EXPECT_GT(result.steps_checked, 0u);
}

TEST(ProofTest, TrivialContradictionChecks) {
  REQUIRE_PROOF_HOOKS();
  CnfFormula f;
  f.add_dimacs_clause({1});
  f.add_dimacs_clause({-1});
  CdclSolver solver(f, proof_config());
  ASSERT_EQ(solver.solve(), SolveStatus::kUnsat);
  const ProofCheckResult result = check_unsat_proof(f, solver.proof());
  EXPECT_TRUE(result.valid) << result.message;
}

class ProofSweep : public testing::TestWithParam<int> {};

TEST_P(ProofSweep, RandomUnsatRefutationsCheck) {
  REQUIRE_PROOF_HOOKS();
  const int seed = GetParam();
  const CnfFormula f = gen::random_ksat(16, 90, 3, seed * 523 + 7);
  CdclSolver solver(f, proof_config());
  if (solver.solve() != SolveStatus::kUnsat) {
    GTEST_SKIP() << "instance happens to be SAT";
  }
  const ProofCheckResult result = check_unsat_proof(f, solver.proof());
  EXPECT_TRUE(result.valid) << result.message << " seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ProofSweep, testing::Range(0, 10));

TEST(ProofTest, ProofWithDbReductionsStillChecks) {
  REQUIRE_PROOF_HOOKS();
  // Force reductions mid-run so deletion steps appear in the log.
  const CnfFormula f = gen::pigeonhole_unsat(7);
  SolverConfig config = proof_config();
  config.reduce_base = 50;
  config.reduce_growth = 1.05;
  CdclSolver solver(f, config);
  ASSERT_EQ(solver.solve(), SolveStatus::kUnsat);
  bool has_deletion = false;
  for (const auto& step : solver.proof().steps()) {
    has_deletion |= step.deletion;
  }
  EXPECT_TRUE(has_deletion) << "expected deletion steps in the log";
  const ProofCheckResult result = check_unsat_proof(f, solver.proof());
  EXPECT_TRUE(result.valid) << result.message;
}

TEST(ProofTest, CorruptedProofRejected) {
  const CnfFormula f = gen::pigeonhole_unsat(5);
  CdclSolver solver(f, proof_config());
  ASSERT_EQ(solver.solve(), SolveStatus::kUnsat);

  // Tamper: inject a clause that is NOT implied (a fresh unit that the
  // formula does not force).
  ProofLog tampered;
  tampered.add(cnf::Clause{Lit(1, false)});
  for (const auto& step : solver.proof().steps()) {
    if (step.deletion) {
      tampered.remove(step.clause);
    } else {
      tampered.add(step.clause);
    }
  }
  // The injected unit may or may not be RUP for this formula; assert the
  // checker at least never crashes and the real proof still validates.
  (void)check_unsat_proof(f, tampered);

  // A proof that never reaches the empty clause must be rejected.
  ProofLog truncated;
  for (const auto& step : solver.proof().steps()) {
    if (!step.deletion && step.clause.empty()) break;
    if (step.deletion) {
      truncated.remove(step.clause);
    } else {
      truncated.add(step.clause);
    }
  }
  const ProofCheckResult result = check_unsat_proof(f, truncated);
  EXPECT_FALSE(result.valid);
  EXPECT_FALSE(result.message.empty());
}

TEST(ProofTest, NonRupInjectionFails) {
  // V1..V3 free: the unit clause (V1) is not RUP for the empty formula.
  CnfFormula f(3);
  f.add_dimacs_clause({1, 2});
  ProofLog bogus;
  bogus.add(cnf::Clause{Lit(3, false)});
  bogus.add_empty();
  const ProofCheckResult result = check_unsat_proof(f, bogus);
  EXPECT_FALSE(result.valid);
  EXPECT_EQ(result.failed_step, 0u);
}

TEST(ProofTest, IsRupBasics) {
  // {(a+b), (~a+b)} makes (b) RUP; (a) is not.
  std::vector<cnf::Clause> db{{Lit(1, false), Lit(2, false)},
                              {Lit(1, true), Lit(2, false)}};
  EXPECT_TRUE(is_rup(db, 2, {Lit(2, false)}));
  EXPECT_FALSE(is_rup(db, 2, {Lit(1, false)}));
  // Tautologies are trivially fine.
  EXPECT_TRUE(is_rup(db, 2, {Lit(1, false), Lit(1, true)}));
}

TEST(ProofTest, SharedClausesFromSplitSolversAreRupAgainstOriginal) {
  // The GridSAT sharing-soundness witness: run a solver, split it twice,
  // and check every clause either branch exports against the ORIGINAL
  // formula extended by previously exported clauses.
  const CnfFormula f = gen::pigeonhole_unsat(6);
  std::vector<cnf::Clause> database = f.clauses();
  std::size_t checked = 0;
  bool all_rup = true;
  const auto checker = [&](const cnf::Clause& c, std::uint32_t) {
    // Append in causal order: a clause may resolve on earlier learned
    // clauses (including ones the donor learned before the split, which
    // the branch inherits), so the checker database must contain every
    // export that preceded it.
    if (checked < 60) {
      ++checked;
      if (!is_rup(database, f.num_vars(), c)) all_rup = false;
    }
    database.push_back(c);
  };
  CdclSolver a(f);
  a.set_share_callback(checker);
  // advance to a splittable state
  while (!a.can_split() && a.solve(200) == SolveStatus::kUnknown) {
  }
  ASSERT_TRUE(a.can_split());
  const Subproblem branch = a.split();
  CdclSolver b(branch);
  b.set_share_callback(checker);
  (void)b.solve(400'000);
  (void)a.solve(400'000);
  ASSERT_GT(checked, 0u);
  EXPECT_TRUE(all_rup)
      << "a split solver exported a clause not implied-by-UP from the "
         "original formula";
}

TEST(ProofTest, ImportedClausesKeepExportsRupAgainstOriginal) {
  // The import-path mirror of the split-export test above: clauses flow
  // donor -> SharedClausePool -> importing branch solver, and everything
  // the importer subsequently exports must still be RUP against the
  // ORIGINAL formula extended by previously exported clauses — imported
  // clauses become antecedents of the importer's learned clauses, so an
  // unsound import would surface here.
  const CnfFormula f = gen::pigeonhole_unsat(6);
  std::vector<cnf::Clause> database = f.clauses();
  std::size_t checked = 0;
  bool all_rup = true;
  const auto checker = [&](const cnf::Clause& c, std::uint32_t) {
    if (checked < 60) {
      ++checked;
      if (!is_rup(database, f.num_vars(), c)) all_rup = false;
    }
    database.push_back(c);
  };

  SharedClausePool pool(2);
  CdclSolver donor(f);
  donor.set_share_callback([&](const cnf::Clause& c, std::uint32_t lbd) {
    checker(c, lbd);
    pool.publish(0, {SharedClause{c, lbd}});
  });
  while (!donor.can_split() && donor.solve(200) == SolveStatus::kUnknown) {
  }
  ASSERT_TRUE(donor.can_split());
  const Subproblem branch = donor.split();
  (void)donor.solve(150'000);  // populate the pool with donor exports

  CdclSolver importer(branch);
  importer.set_share_callback(checker);
  auto cursor = pool.make_cursor();
  std::vector<SharedClause> incoming;
  ASSERT_GT(pool.collect(/*self=*/1, cursor, incoming), 0u);
  std::vector<cnf::Clause> fresh;
  for (SharedClause& sc : incoming) fresh.push_back(std::move(sc.lits));
  importer.import_clauses(std::move(fresh));
  (void)importer.solve(400'000);
  ASSERT_GT(checked, 0u);
  EXPECT_TRUE(all_rup)
      << "an importing split solver exported a clause not implied-by-UP "
         "from the original formula";
}

// --- ProofChecker (the watched-literal checker behind certify()) -------

TEST(ProofCheckerTest, AgreesWithReferenceCheckerOnRealProofs) {
  REQUIRE_PROOF_HOOKS();
  // certify() must accept exactly what the naive reference checker
  // accepts on solver-produced refutations, including ones with
  // deletions.
  SolverConfig config = proof_config();
  config.reduce_base = 50;
  config.reduce_growth = 1.05;
  for (const int n : {5, 6}) {
    const CnfFormula f = gen::pigeonhole_unsat(n);
    CdclSolver solver(f, config);
    ASSERT_EQ(solver.solve(), SolveStatus::kUnsat);
    const ProofCheckResult naive = check_unsat_proof(f, solver.proof());
    const ProofCheckResult fast = certify(f, solver.proof());
    EXPECT_TRUE(naive.valid) << naive.message;
    EXPECT_TRUE(fast.valid) << fast.message;
    EXPECT_EQ(naive.steps_checked, fast.steps_checked);
  }
}

TEST(ProofCheckerTest, RejectsWhatTheReferenceCheckerRejects) {
  CnfFormula f(3);
  f.add_dimacs_clause({1, 2});
  ProofLog bogus;
  bogus.add(cnf::Clause{Lit(3, false)});  // free variable: not RUP
  bogus.add_empty();
  const ProofCheckResult result = certify(f, bogus);
  EXPECT_FALSE(result.valid);
  EXPECT_EQ(result.failed_step, 0u);

  ProofLog truncated;  // never derives the empty clause
  truncated.add(cnf::Clause{Lit(1, false)});
  const ProofCheckResult t = certify(f, truncated);
  EXPECT_FALSE(t.valid);
  EXPECT_FALSE(t.message.empty());
}

TEST(ProofCheckerTest, RandomSweepAgreement) {
  for (int seed = 0; seed < 10; ++seed) {
    const CnfFormula f = gen::random_ksat(16, 90, 3, seed * 523 + 7);
    CdclSolver solver(f, proof_config());
    if (solver.solve() != SolveStatus::kUnsat) continue;
    const ProofCheckResult naive = check_unsat_proof(f, solver.proof());
    const ProofCheckResult fast = certify(f, solver.proof());
    EXPECT_EQ(naive.valid, fast.valid) << "seed " << seed;
  }
}

// --- DistributedProofBuilder: split-tree stitching ---------------------

TEST(DistributedProofBuilderTest, StitchesSiblingLeaves) {
  // Leaves ¬(d1) and ¬(¬d1) resolve to the empty clause.
  const Lit d1(1, false);
  DistributedProofBuilder builder;
  builder.add_leaf({d1});
  builder.add_leaf({~d1});
  EXPECT_EQ(builder.leaf_count(), 2u);
  EXPECT_TRUE(builder.stitch()) << builder.stitch_error();
  EXPECT_TRUE(builder.log().ends_with_empty_clause());
}

TEST(DistributedProofBuilderTest, StitchesADeeperTree) {
  // Four leaves covering the full (d1, d2) split tree, in a scrambled
  // arrival order, plus an ancestor re-solve that subsumption removes.
  const Lit d1(1, false);
  const Lit d2(2, false);
  DistributedProofBuilder builder;
  builder.add_leaf({d1, d2});
  builder.add_leaf({~d1});
  builder.add_leaf({d1, ~d2});
  builder.add_leaf({d1, d2});  // a recovered subproblem refuted twice
  EXPECT_TRUE(builder.stitch()) << builder.stitch_error();
  EXPECT_TRUE(builder.log().ends_with_empty_clause());
}

TEST(DistributedProofBuilderTest, RootLeafAloneSuffices) {
  DistributedProofBuilder builder;
  builder.add_leaf({});  // the root itself was refuted
  EXPECT_TRUE(builder.stitch()) << builder.stitch_error();
  EXPECT_TRUE(builder.log().ends_with_empty_clause());
}

TEST(DistributedProofBuilderTest, StitchesOverlappingRecoveredTrees) {
  // Regression: flushed out by the certification oracle on pigeonhole-8
  // with two client kills and heavy-checkpoint recovery. A recovered
  // client re-splits its subtree under a fresh decision order, so the
  // surviving leaves cover the cube as two OVERLAPPING split trees with
  // no sibling for the deepest set, where the greedy deepest-first rule
  // used to give up (even though {~V2 V3}/{~V2 ~V3} ARE siblings, and
  // the verdict itself was sound). The stitch must fall back to refuting
  // the residual leaf clauses and splicing that derivation into the log.
  REQUIRE_PROOF_HOOKS();  // the fallback needs a proof-logging refuter
  const Lit v1(1, false);
  const Lit v2(2, false);
  const Lit v3(3, false);
  DistributedProofBuilder builder;
  // The exact residual cover observed in the failing campaign:
  //   {V1 V2} {~V1 V2 V3} {V2 ~V3} {~V2 V3} {~V2 ~V3}
  builder.add_leaf({v1, v2});
  builder.add_leaf({~v1, v2, v3});
  builder.add_leaf({v2, ~v3});
  builder.add_leaf({~v2, v3});
  builder.add_leaf({~v2, ~v3});
  ASSERT_TRUE(builder.stitch()) << builder.stitch_error();
  EXPECT_TRUE(builder.log().ends_with_empty_clause());
  // The spliced derivation must be RUP against the leaf clauses alone:
  // replaying the log against a formula holding exactly those clauses
  // makes the leaf adds trivially RUP and checks everything after them.
  CnfFormula leaves(3);
  leaves.add_clause({~v1, ~v2});
  leaves.add_clause({v1, ~v2, ~v3});
  leaves.add_clause({~v2, v3});
  leaves.add_clause({v2, ~v3});
  leaves.add_clause({v2, v3});
  const ProofCheckResult check = certify(leaves, builder.log());
  EXPECT_TRUE(check.valid) << check.message << " at step "
                           << check.failed_step;
}

TEST(DistributedProofBuilderTest, MissingSiblingFailsTheStitch) {
  // Only one half of the split reported: the stitch must refuse — this
  // is exactly how the oracle catches a dropped subproblem or a stale
  // checkpoint recovery — and name the guiding path it never saw
  // refuted.
  const Lit d1(1, false);
  DistributedProofBuilder builder;
  builder.add_leaf({d1});
  EXPECT_FALSE(builder.stitch());
  EXPECT_NE(builder.stitch_error().find("no sibling cover"),
            std::string::npos)
      << builder.stitch_error();
  EXPECT_NE(builder.stitch_error().find("~V1"), std::string::npos)
      << builder.stitch_error();
}

TEST(DistributedProofBuilderTest, NoLeavesFailsTheStitch) {
  DistributedProofBuilder builder;
  EXPECT_FALSE(builder.stitch());
  EXPECT_FALSE(builder.stitch_error().empty());
}

// --- End-to-end: the thread-parallel solver's stitched refutation ------

TEST(DistributedProofTest, ParallelRefutationCertifies) {
  REQUIRE_PROOF_HOOKS();
  const CnfFormula f = gen::pigeonhole_unsat(7);
  ParallelOptions options;
  options.num_threads = 4;
  options.slice_work = 20'000;  // force splits and sharing
  options.solver.log_proof = true;
  ParallelSolver solver(f, options);
  const ParallelResult result = solver.solve();
  ASSERT_EQ(result.status, SolveStatus::kUnsat);
  ASSERT_TRUE(result.proof != nullptr);
  ASSERT_TRUE(result.proof_stitched) << result.proof_error;
  const ProofCheckResult check = certify(f, *result.proof);
  EXPECT_TRUE(check.valid) << check.message << " at step "
                           << check.failed_step;
  EXPECT_GT(check.steps_checked, 0u);
}

TEST(DistributedProofTest, ParallelXorChainRefutationCertifies) {
  REQUIRE_PROOF_HOOKS();
  const CnfFormula f = gen::urquhart_like(10, 3);
  ParallelOptions options;
  options.num_threads = 4;
  options.slice_work = 10'000;
  options.solver.log_proof = true;
  ParallelSolver solver(f, options);
  const ParallelResult result = solver.solve();
  ASSERT_EQ(result.status, SolveStatus::kUnsat);
  ASSERT_TRUE(result.proof != nullptr);
  ASSERT_TRUE(result.proof_stitched) << result.proof_error;
  const ProofCheckResult check = certify(f, *result.proof);
  EXPECT_TRUE(check.valid) << check.message;
}

TEST(DistributedProofTest, NoProofWithoutLogProof) {
  const CnfFormula f = gen::pigeonhole_unsat(6);
  ParallelOptions options;
  options.num_threads = 2;
  ParallelSolver solver(f, options);
  const ParallelResult result = solver.solve();
  ASSERT_EQ(result.status, SolveStatus::kUnsat);
  EXPECT_EQ(result.proof, nullptr);
}

TEST(DistributedProofTest, StitchedProofExportsWellFormedDrat) {
  REQUIRE_PROOF_HOOKS();
  const CnfFormula f = gen::pigeonhole_unsat(6);
  ParallelOptions options;
  options.num_threads = 2;
  options.solver.log_proof = true;
  ParallelSolver solver(f, options);
  const ParallelResult result = solver.solve();
  ASSERT_EQ(result.status, SolveStatus::kUnsat);
  ASSERT_TRUE(result.proof != nullptr);
  std::ostringstream out;
  result.proof->write_drat(out);
  const std::string drat = out.str();
  ASSERT_FALSE(drat.empty());
  // Every line is "[d] lit ... 0"; the last non-deletion line is "0".
  std::istringstream in(drat);
  std::string line;
  std::string last;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.back(), '0') << line;
    if (line.rfind("d ", 0) != 0) last = line;
  }
  EXPECT_EQ(last, "0") << "DRAT must end at the empty clause";
}

TEST(ProofTest, DratRendering) {
  ProofLog log;
  log.add(cnf::Clause{Lit(1, false), Lit(2, true)});
  log.remove(cnf::Clause{Lit(3, false)});
  log.add_empty();
  std::ostringstream out;
  log.write_drat(out);
  EXPECT_EQ(out.str(), "1 -2 0\nd 3 0\n0\n");
}

TEST(ProofTest, SatRunsLeaveNoEmptyClause) {
  CnfFormula f;
  f.add_dimacs_clause({1, 2});
  CdclSolver solver(f, proof_config());
  ASSERT_EQ(solver.solve(), SolveStatus::kSat);
  EXPECT_FALSE(solver.proof().ends_with_empty_clause());
}

}  // namespace
}  // namespace gridsat::solver
