// Proof logging / checking tests: recorded refutations verify; corrupted
// ones are rejected; every clause a split solver shares is RUP against
// the ORIGINAL formula (the mechanical witness of GridSAT's sharing
// soundness); DRAT rendering round-trips basics.
#include <gtest/gtest.h>

#include <optional>
#include <sstream>

#include "gen/graph_color.hpp"
#include "gen/pigeonhole.hpp"
#include "gen/random_ksat.hpp"
#include "gen/xor_chains.hpp"
#include "solver/brute_force.hpp"
#include "solver/cdcl.hpp"
#include "solver/proof.hpp"

namespace gridsat::solver {
namespace {

using cnf::CnfFormula;
using cnf::Lit;

SolverConfig proof_config() {
  SolverConfig config;
  config.log_proof = true;
  return config;
}

TEST(ProofTest, PigeonholeRefutationChecks) {
  const CnfFormula f = gen::pigeonhole_unsat(5);
  CdclSolver solver(f, proof_config());
  ASSERT_EQ(solver.solve(), SolveStatus::kUnsat);
  ASSERT_TRUE(solver.proof().ends_with_empty_clause());
  const ProofCheckResult result = check_unsat_proof(f, solver.proof());
  EXPECT_TRUE(result.valid) << result.message;
  EXPECT_GT(result.steps_checked, 0u);
}

TEST(ProofTest, TrivialContradictionChecks) {
  CnfFormula f;
  f.add_dimacs_clause({1});
  f.add_dimacs_clause({-1});
  CdclSolver solver(f, proof_config());
  ASSERT_EQ(solver.solve(), SolveStatus::kUnsat);
  const ProofCheckResult result = check_unsat_proof(f, solver.proof());
  EXPECT_TRUE(result.valid) << result.message;
}

class ProofSweep : public testing::TestWithParam<int> {};

TEST_P(ProofSweep, RandomUnsatRefutationsCheck) {
  const int seed = GetParam();
  const CnfFormula f = gen::random_ksat(16, 90, 3, seed * 523 + 7);
  CdclSolver solver(f, proof_config());
  if (solver.solve() != SolveStatus::kUnsat) {
    GTEST_SKIP() << "instance happens to be SAT";
  }
  const ProofCheckResult result = check_unsat_proof(f, solver.proof());
  EXPECT_TRUE(result.valid) << result.message << " seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ProofSweep, testing::Range(0, 10));

TEST(ProofTest, ProofWithDbReductionsStillChecks) {
  // Force reductions mid-run so deletion steps appear in the log.
  const CnfFormula f = gen::pigeonhole_unsat(7);
  SolverConfig config = proof_config();
  config.reduce_base = 50;
  config.reduce_growth = 1.05;
  CdclSolver solver(f, config);
  ASSERT_EQ(solver.solve(), SolveStatus::kUnsat);
  bool has_deletion = false;
  for (const auto& step : solver.proof().steps()) {
    has_deletion |= step.deletion;
  }
  EXPECT_TRUE(has_deletion) << "expected deletion steps in the log";
  const ProofCheckResult result = check_unsat_proof(f, solver.proof());
  EXPECT_TRUE(result.valid) << result.message;
}

TEST(ProofTest, CorruptedProofRejected) {
  const CnfFormula f = gen::pigeonhole_unsat(5);
  CdclSolver solver(f, proof_config());
  ASSERT_EQ(solver.solve(), SolveStatus::kUnsat);

  // Tamper: inject a clause that is NOT implied (a fresh unit that the
  // formula does not force).
  ProofLog tampered;
  tampered.add(cnf::Clause{Lit(1, false)});
  for (const auto& step : solver.proof().steps()) {
    if (step.deletion) {
      tampered.remove(step.clause);
    } else {
      tampered.add(step.clause);
    }
  }
  // The injected unit may or may not be RUP for this formula; assert the
  // checker at least never crashes and the real proof still validates.
  (void)check_unsat_proof(f, tampered);

  // A proof that never reaches the empty clause must be rejected.
  ProofLog truncated;
  for (const auto& step : solver.proof().steps()) {
    if (!step.deletion && step.clause.empty()) break;
    if (step.deletion) {
      truncated.remove(step.clause);
    } else {
      truncated.add(step.clause);
    }
  }
  const ProofCheckResult result = check_unsat_proof(f, truncated);
  EXPECT_FALSE(result.valid);
  EXPECT_FALSE(result.message.empty());
}

TEST(ProofTest, NonRupInjectionFails) {
  // V1..V3 free: the unit clause (V1) is not RUP for the empty formula.
  CnfFormula f(3);
  f.add_dimacs_clause({1, 2});
  ProofLog bogus;
  bogus.add(cnf::Clause{Lit(3, false)});
  bogus.add_empty();
  const ProofCheckResult result = check_unsat_proof(f, bogus);
  EXPECT_FALSE(result.valid);
  EXPECT_EQ(result.failed_step, 0u);
}

TEST(ProofTest, IsRupBasics) {
  // {(a+b), (~a+b)} makes (b) RUP; (a) is not.
  std::vector<cnf::Clause> db{{Lit(1, false), Lit(2, false)},
                              {Lit(1, true), Lit(2, false)}};
  EXPECT_TRUE(is_rup(db, 2, {Lit(2, false)}));
  EXPECT_FALSE(is_rup(db, 2, {Lit(1, false)}));
  // Tautologies are trivially fine.
  EXPECT_TRUE(is_rup(db, 2, {Lit(1, false), Lit(1, true)}));
}

TEST(ProofTest, SharedClausesFromSplitSolversAreRupAgainstOriginal) {
  // The GridSAT sharing-soundness witness: run a solver, split it twice,
  // and check every clause either branch exports against the ORIGINAL
  // formula extended by previously exported clauses.
  const CnfFormula f = gen::pigeonhole_unsat(6);
  std::vector<cnf::Clause> database = f.clauses();
  std::size_t checked = 0;
  bool all_rup = true;
  const auto checker = [&](const cnf::Clause& c, std::uint32_t) {
    // Append in causal order: a clause may resolve on earlier learned
    // clauses (including ones the donor learned before the split, which
    // the branch inherits), so the checker database must contain every
    // export that preceded it.
    if (checked < 60) {
      ++checked;
      if (!is_rup(database, f.num_vars(), c)) all_rup = false;
    }
    database.push_back(c);
  };
  CdclSolver a(f);
  a.set_share_callback(checker);
  // advance to a splittable state
  while (!a.can_split() && a.solve(200) == SolveStatus::kUnknown) {
  }
  ASSERT_TRUE(a.can_split());
  const Subproblem branch = a.split();
  CdclSolver b(branch);
  b.set_share_callback(checker);
  (void)b.solve(400'000);
  (void)a.solve(400'000);
  ASSERT_GT(checked, 0u);
  EXPECT_TRUE(all_rup)
      << "a split solver exported a clause not implied-by-UP from the "
         "original formula";
}

TEST(ProofTest, DratRendering) {
  ProofLog log;
  log.add(cnf::Clause{Lit(1, false), Lit(2, true)});
  log.remove(cnf::Clause{Lit(3, false)});
  log.add_empty();
  std::ostringstream out;
  log.write_drat(out);
  EXPECT_EQ(out.str(), "1 -2 0\nd 3 0\n0\n");
}

TEST(ProofTest, SatRunsLeaveNoEmptyClause) {
  CnfFormula f;
  f.add_dimacs_clause({1, 2});
  CdclSolver solver(f, proof_config());
  ASSERT_EQ(solver.solve(), SolveStatus::kSat);
  EXPECT_FALSE(solver.proof().ends_with_empty_clause());
}

}  // namespace
}  // namespace gridsat::solver
