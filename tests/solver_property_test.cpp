// Configuration-invariance properties: the verdict (and model validity)
// must not depend on heuristic knobs — restarts, decay schedule, phase
// saving, minimization, budget slicing — and must survive DIMACS round
// trips and noisy imports.
#include <gtest/gtest.h>

#include <optional>

#include "cnf/dimacs.hpp"
#include "gen/pigeonhole.hpp"
#include "gen/random_ksat.hpp"
#include "solver/brute_force.hpp"
#include "solver/cdcl.hpp"

namespace gridsat::solver {
namespace {

using cnf::CnfFormula;
using cnf::Lit;

struct Knobs {
  const char* name;
  SolverConfig config;
};

std::vector<Knobs> knob_matrix() {
  std::vector<Knobs> knobs;
  {
    SolverConfig c;
    knobs.push_back({"default", c});
  }
  {
    SolverConfig c;
    c.restart_base = 0;
    knobs.push_back({"no-restarts", c});
  }
  {
    SolverConfig c;
    c.restart_base = 64;
    knobs.push_back({"fast-restarts", c});
  }
  {
    SolverConfig c;
    c.decay_interval = 256;
    c.var_activity_decay = 0.5;
    knobs.push_back({"zchaff-decay", c});
  }
  {
    SolverConfig c;
    c.phase_saving = false;
    knobs.push_back({"no-phase-saving", c});
  }
  {
    SolverConfig c;
    c.minimize_learned = true;
    knobs.push_back({"minimize", c});
  }
  {
    SolverConfig c;
    c.reduce_base = 60;
    c.reduce_growth = 1.02;
    knobs.push_back({"aggressive-reduce", c});
  }
  return knobs;
}

class KnobInvariance : public testing::TestWithParam<int> {};

TEST_P(KnobInvariance, VerdictIndependentOfHeuristics) {
  const int seed = GetParam();
  const CnfFormula f = gen::random_ksat(15, 64, 3, seed * 101 + 13);
  const bool truth = brute_force_solve(f).has_value();
  for (const Knobs& k : knob_matrix()) {
    CdclSolver solver(f, k.config);
    const SolveStatus status = solver.solve();
    EXPECT_EQ(status, truth ? SolveStatus::kSat : SolveStatus::kUnsat)
        << k.name << " seed " << seed;
    if (status == SolveStatus::kSat) {
      EXPECT_TRUE(is_model(f, solver.model())) << k.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, KnobInvariance, testing::Range(0, 10));

class BudgetSlicing : public testing::TestWithParam<int> {};

TEST_P(BudgetSlicing, SliceSizeDoesNotChangeVerdict) {
  const std::uint64_t slice = static_cast<std::uint64_t>(GetParam());
  const CnfFormula f = gen::pigeonhole_unsat(6);
  CdclSolver solver(f);
  SolveStatus status = SolveStatus::kUnknown;
  while (status == SolveStatus::kUnknown) {
    status = solver.solve(slice);
  }
  EXPECT_EQ(status, SolveStatus::kUnsat);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BudgetSlicing,
                         testing::Values(1, 7, 100, 3001, 77777));

TEST(RoundTripTest, DimacsRoundTripPreservesSolverBehaviour) {
  for (int seed = 0; seed < 8; ++seed) {
    const CnfFormula f = gen::random_ksat(25, 106, 3, seed * 67 + 5);
    const CnfFormula g = cnf::parse_dimacs_string(cnf::to_dimacs_string(f));
    ASSERT_TRUE(f == g);
    CdclSolver a(f);
    CdclSolver b(g);
    EXPECT_EQ(a.solve(), b.solve());
    EXPECT_EQ(a.stats().decisions, b.stats().decisions);
    EXPECT_EQ(a.stats().work, b.stats().work);
  }
}

TEST(ImportNoiseTest, DuplicateAndTautologicalImportsTolerated) {
  const CnfFormula f = gen::random_ksat(20, 85, 3, 41);
  CdclSolver reference(f);
  const SolveStatus expected = reference.solve();

  CdclSolver noisy(f);
  std::vector<cnf::Clause> junk;
  junk.push_back({Lit(1, false), Lit(1, true)});            // tautology
  junk.push_back({Lit(2, false), Lit(3, false)});
  junk.push_back({Lit(2, false), Lit(3, false)});           // duplicate
  junk.push_back({Lit(4, false), Lit(4, false), Lit(5, true)});  // dup lit
  // Only import clauses implied by f? The tautology and duplicates are
  // universally valid or repeats of a clause implied only if f implies
  // it... use clauses from the reference solver to stay sound.
  std::vector<cnf::Clause> sound;
  CdclSolver donor(f);
  donor.set_share_callback([&](const cnf::Clause& c, std::uint32_t) {
    if (sound.size() < 20) sound.push_back(c);
  });
  donor.solve();
  noisy.import_clauses({junk[0]});  // tautology is always sound
  noisy.import_clauses(sound);
  noisy.import_clauses(sound);  // import everything twice
  const SolveStatus status = noisy.solve();
  EXPECT_EQ(status, expected);
  if (status == SolveStatus::kSat) {
    EXPECT_TRUE(is_model(f, noisy.model()));
  }
}

TEST(ModelStabilityTest, RepeatedSolveReturnsSameModel) {
  const CnfFormula f = gen::random_ksat_planted(30, 120, 3, 77);
  CdclSolver solver(f);
  ASSERT_EQ(solver.solve(), SolveStatus::kSat);
  const cnf::Assignment first = solver.model();
  ASSERT_EQ(solver.solve(), SolveStatus::kSat);
  EXPECT_TRUE(first == solver.model());
}

TEST(StatsConsistencyTest, WorkDominatesComponentCounts) {
  const CnfFormula f = gen::pigeonhole_unsat(7);
  CdclSolver solver(f);
  solver.solve();
  const auto& s = solver.stats();
  EXPECT_GE(s.work, s.propagations);
  EXPECT_GE(s.work, s.conflicts);
  EXPECT_GE(s.learned_clauses, s.deleted_clauses);
  EXPECT_GE(s.learned_literals, s.learned_clauses);  // >= 1 lit per clause
}

}  // namespace
}  // namespace gridsat::solver
