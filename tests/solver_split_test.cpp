// Properties of search-space splitting (paper §3.1 / Figure 2) and sound
// clause sharing (§3.2):
//   * the two branches of a split partition the search space — the
//     original formula is SAT iff some branch is SAT;
//   * recursive splitting down to many leaves preserves the verdict;
//   * every clause exported through the share callback is implied by the
//     ORIGINAL formula, even when learned under split assumptions;
//   * importing shared clauses never changes a verdict;
//   * subproblem serialization round-trips.
#include <gtest/gtest.h>

#include <deque>
#include <optional>
#include <vector>

#include "cnf/formula.hpp"
#include "gen/graph_color.hpp"
#include "gen/pigeonhole.hpp"
#include "gen/random_ksat.hpp"
#include "gen/xor_chains.hpp"
#include "solver/brute_force.hpp"
#include "solver/cdcl.hpp"

namespace gridsat::solver {
namespace {

using cnf::CnfFormula;
using cnf::Lit;

/// Run the solver a little so it builds a decision stack, then split.
/// Returns nullopt if the instance resolved before a split was possible.
std::optional<Subproblem> advance_and_split(CdclSolver& solver,
                                            std::uint64_t slice = 200) {
  for (int attempts = 0; attempts < 2000; ++attempts) {
    const SolveStatus status = solver.solve(slice);
    if (status != SolveStatus::kUnknown) return std::nullopt;
    if (solver.can_split()) return solver.split();
  }
  ADD_FAILURE() << "never reached a splittable state";
  return std::nullopt;
}

TEST(SplitTest, SplitPartitionsSearchSpace) {
  int splits_seen = 0;
  for (int seed = 0; seed < 20; ++seed) {
    const CnfFormula f = gen::random_ksat(14, 59, 3, seed * 31 + 5);
    const bool truth = brute_force_solve(f).has_value();

    CdclSolver a(f);
    auto other = advance_and_split(a);
    if (!other.has_value()) continue;  // solved before splitting; fine
    ++splits_seen;
    CdclSolver b(*other);
    const SolveStatus sa = a.solve();
    const SolveStatus sb = b.solve();
    ASSERT_NE(sa, SolveStatus::kUnknown);
    ASSERT_NE(sb, SolveStatus::kUnknown);
    const bool combined =
        (sa == SolveStatus::kSat) || (sb == SolveStatus::kSat);
    EXPECT_EQ(combined, truth) << "seed " << seed;
    if (sa == SolveStatus::kSat) EXPECT_TRUE(is_model(f, a.model()));
    if (sb == SolveStatus::kSat) EXPECT_TRUE(is_model(f, b.model()));
  }
  EXPECT_GT(splits_seen, 0) << "sweep never exercised a split";
}

TEST(SplitTest, RecursiveSplittingPreservesVerdict) {
  for (int seed = 0; seed < 8; ++seed) {
    const CnfFormula f = gen::random_ksat(16, 68, 3, seed * 97 + 11);
    const bool truth = brute_force_solve(f).has_value();

    // Maintain a pool of solvers; repeatedly split the front one until we
    // have up to 8 leaves, then solve them all.
    std::deque<std::unique_ptr<CdclSolver>> pool;
    pool.push_back(std::make_unique<CdclSolver>(f));
    bool found_sat = false;
    std::vector<std::unique_ptr<CdclSolver>> leaves;
    while (!pool.empty()) {
      auto solver = std::move(pool.front());
      pool.pop_front();
      if (pool.size() + leaves.size() < 7) {
        auto other = advance_and_split(*solver, 100);
        if (other.has_value()) {
          pool.push_back(std::make_unique<CdclSolver>(*other));
          pool.push_back(std::move(solver));
          continue;
        }
      }
      leaves.push_back(std::move(solver));
    }
    for (auto& leaf : leaves) {
      const SolveStatus status = leaf->solve();
      ASSERT_NE(status, SolveStatus::kUnknown);
      if (status == SolveStatus::kSat) {
        found_sat = true;
        EXPECT_TRUE(is_model(f, leaf->model()));
      }
    }
    EXPECT_EQ(found_sat, truth) << "seed " << seed;
  }
}

TEST(SplitTest, SplitBranchAssumptionIsTainted) {
  const CnfFormula f = gen::pigeonhole_unsat(6);
  CdclSolver a(f);
  const auto other = advance_and_split(a);
  ASSERT_TRUE(other.has_value());
  // The complementary branch must contain exactly one tainted unit more
  // than the donor's level-0 prefix, and its path must mention it.
  int tainted = 0;
  for (const auto& u : other->units) {
    if (u.tainted) ++tainted;
  }
  EXPECT_GE(tainted, 1);
  EXPECT_FALSE(other->path.empty());
  EXPECT_GT(other->num_problem_clauses, 0u);
}

TEST(SplitTest, CannotSplitAtLevelZero) {
  CnfFormula f;
  f.add_dimacs_clause({1});
  f.add_dimacs_clause({-1, 2});
  CdclSolver solver(f);
  EXPECT_FALSE(solver.can_split());
  solver.solve();
  EXPECT_FALSE(solver.can_split());  // solved
}

/// Check that `clause` is implied by `formula`: formula AND NOT(clause)
/// must be unsatisfiable. Uses a fresh CDCL solver as the checker.
bool implied_by(const CnfFormula& formula, const cnf::Clause& clause) {
  Subproblem sp;
  sp.num_vars = formula.num_vars();
  for (const Lit l : clause) {
    sp.num_vars = std::max(sp.num_vars, l.var());
  }
  for (const auto& c : formula.clauses()) sp.clauses.push_back(c);
  sp.num_problem_clauses = sp.clauses.size();
  for (const Lit l : clause) {
    sp.units.push_back(SubproblemUnit{~l, /*tainted=*/false});
  }
  CdclSolver checker(sp);
  return checker.solve() == SolveStatus::kUnsat;
}

TEST(SharingSoundnessTest, SharedClausesImpliedByOriginalFormula) {
  // The load-bearing property for GridSAT's global clause sharing: even
  // clauses learned in a split branch (under assumptions) must be valid
  // for the original formula because tainted level-0 literals are kept.
  for (int seed = 0; seed < 6; ++seed) {
    const CnfFormula f = gen::random_ksat(13, 55, 3, seed * 131 + 3);
    CdclSolver a(f);
    auto other = advance_and_split(a, 150);
    if (!other.has_value()) continue;
    CdclSolver b(*other);

    std::vector<cnf::Clause> shared;
    b.set_share_callback([&](const cnf::Clause& c, std::uint32_t) {
      if (shared.size() < 50) shared.push_back(c);
    });
    a.set_share_callback([&](const cnf::Clause& c, std::uint32_t) {
      if (shared.size() < 50) shared.push_back(c);
    });
    a.solve();
    b.solve();
    for (const auto& clause : shared) {
      EXPECT_TRUE(implied_by(f, clause))
          << "seed " << seed << ": shared clause not implied by original";
    }
  }
}

TEST(SharingSoundnessTest, DeepSplitChainStillSound) {
  const CnfFormula f = gen::pigeonhole_unsat(7);
  CdclSolver current(f);
  std::vector<Subproblem> branches;
  for (int depth = 0; depth < 4; ++depth) {
    auto other = advance_and_split(current, 300);
    ASSERT_TRUE(other.has_value()) << "depth " << depth;
    branches.push_back(std::move(*other));
  }
  // The deepest branch carries several tainted assumptions; clauses it
  // learns must still be implied by the original formula.
  CdclSolver leaf(branches.back());
  std::vector<cnf::Clause> shared;
  leaf.set_share_callback([&](const cnf::Clause& c, std::uint32_t) {
    if (shared.size() < 30) shared.push_back(c);
  });
  leaf.solve(2'000'000);
  ASSERT_FALSE(shared.empty());
  for (const auto& clause : shared) {
    EXPECT_TRUE(implied_by(f, clause));
  }
}

TEST(SharingTest, ImportPreservesVerdict) {
  for (int seed = 0; seed < 10; ++seed) {
    const CnfFormula f = gen::random_ksat(14, 60, 3, seed * 41 + 17);
    const bool truth = brute_force_solve(f).has_value();

    // Harvest clauses from one run, inject into a fresh solver.
    CdclSolver donor(f);
    std::vector<cnf::Clause> harvest;
    donor.set_share_callback([&](const cnf::Clause& c, std::uint32_t) {
      if (c.size() <= 10 && harvest.size() < 200) harvest.push_back(c);
    });
    donor.solve();

    CdclSolver receiver(f);
    receiver.import_clauses(harvest);
    const SolveStatus status = receiver.solve();
    EXPECT_EQ(status,
              truth ? SolveStatus::kSat : SolveStatus::kUnsat)
        << "seed " << seed;
    if (status == SolveStatus::kSat) {
      EXPECT_TRUE(is_model(f, receiver.model()));
    }
    EXPECT_GE(receiver.stats().imported_clauses, 0u);
  }
}

TEST(SharingTest, ImportedUnitForcesImplication) {
  // Paper §3.2 case 1: a clause with one unknown literal results in an
  // implication once merged.
  CnfFormula f;
  f.add_dimacs_clause({1, 2});
  f.add_dimacs_clause({-1, 2});
  f.add_dimacs_clause({3, 2});
  CdclSolver solver(f);
  solver.import_clauses({cnf::Clause{Lit(3, true)}});
  ASSERT_EQ(solver.solve(), SolveStatus::kSat);
  EXPECT_EQ(solver.value(3), cnf::LBool::kFalse);
  EXPECT_EQ(solver.stats().imported_clauses, 1u);
}

TEST(SharingTest, ImportedContradictionRefutesSubproblem) {
  // Paper §3.2 case 3: an imported clause with all literals false at
  // level 0 makes the subproblem unsatisfiable.
  CnfFormula f;
  f.add_dimacs_clause({1});
  f.add_dimacs_clause({2});
  CdclSolver solver(f);
  solver.import_clauses({cnf::Clause{Lit(1, true), Lit(2, true)}});
  EXPECT_EQ(solver.solve(), SolveStatus::kUnsat);
}

TEST(SharingTest, SatisfiedImportDiscarded) {
  // Paper §3.2 case 4: clauses satisfied at level 0 are discarded.
  CnfFormula f;
  f.add_dimacs_clause({1});
  f.add_dimacs_clause({2, 3});
  CdclSolver solver(f);
  solver.import_clauses({cnf::Clause{Lit(1, false), Lit(2, false)}});
  EXPECT_EQ(solver.solve(), SolveStatus::kSat);
  EXPECT_EQ(solver.stats().imported_useless, 1u);
}

TEST(SharingTest, PendingImportsCounted) {
  CnfFormula f;
  f.add_dimacs_clause({1, 2});
  CdclSolver solver(f);
  solver.import_clauses({cnf::Clause{Lit(1, false)}, cnf::Clause{Lit(2, false)}});
  EXPECT_EQ(solver.pending_imports(), 2u);
  solver.solve();
  EXPECT_EQ(solver.pending_imports(), 0u);
}

TEST(SubproblemTest, SerializationRoundTrip) {
  Subproblem sp;
  sp.num_vars = 20;
  sp.units = {SubproblemUnit{Lit(3, false), false},
              SubproblemUnit{Lit(7, true), true}};
  sp.clauses = {{Lit(1, false), Lit(2, true)},
                {Lit(4, false), Lit(5, false), Lit(6, true)},
                {Lit(20, true)}};
  sp.num_problem_clauses = 2;
  sp.path = "~V7";
  const auto bytes = sp.to_bytes();
  EXPECT_EQ(bytes.size(), sp.wire_size());
  const Subproblem back = Subproblem::from_bytes(bytes);
  EXPECT_EQ(back, sp);
}

TEST(SubproblemTest, WireSizeMatchesSerializedSize) {
  const CnfFormula f = gen::urquhart_like(8, 2);
  CdclSolver solver(f);
  auto other = advance_and_split(solver);
  ASSERT_TRUE(other.has_value());
  EXPECT_EQ(other->to_bytes().size(), other->wire_size());
}

TEST(SubproblemTest, RoundTrippedSubproblemSolvesIdentically) {
  // Fine slices: binary-first BCP resolves this instance quickly, so ask
  // for a split at the earliest opportunity rather than every 200 units.
  const CnfFormula f = gen::graph_coloring(12, 30, 3, 7);
  CdclSolver solver(f);
  auto other = advance_and_split(solver, 20);
  ASSERT_TRUE(other.has_value());
  CdclSolver direct(*other);
  CdclSolver viawire(Subproblem::from_bytes(other->to_bytes()));
  EXPECT_EQ(direct.solve(), viawire.solve());
  EXPECT_EQ(direct.stats().decisions, viawire.stats().decisions);
}

TEST(MigrationTest, ToSubproblemResumesElsewhere) {
  // §3.4 migration: a client's current state can be captured and resumed
  // on another host with the same verdict.
  const CnfFormula f = gen::pigeonhole_unsat(6);
  const bool truth = false;  // pigeonhole is UNSAT
  CdclSolver source(f);
  (void)source.solve(5'000);  // make some progress
  const Subproblem snapshot = source.to_subproblem();
  CdclSolver target(snapshot);
  const SolveStatus status = target.solve();
  EXPECT_EQ(status, truth ? SolveStatus::kSat : SolveStatus::kUnsat);
}

TEST(MigrationTest, MigratedStateKeepsLearnedClauses) {
  const CnfFormula f = gen::pigeonhole_unsat(7);
  CdclSolver source(f);
  (void)source.solve(50'000);
  const Subproblem snapshot = source.to_subproblem();
  EXPECT_GT(snapshot.clauses.size(), snapshot.num_problem_clauses)
      << "learned clauses should ride along in a migration";
}

}  // namespace
}  // namespace gridsat::solver
