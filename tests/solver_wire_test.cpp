// Wire-format tests (DESIGN.md §4e): golden-bytes compatibility fixtures
// for the v2 encoding, the wire_size() == serialize().size() property
// over randomized payloads, byte-identity of the arena fast path, delta
// checkpoint chain restores, and the campaign-level base-ref caching /
// renegotiation / incremental-checkpoint behaviours.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cnf/wire.hpp"
#include "core/campaign.hpp"
#include "core/checkpoint.hpp"
#include "core/protocol.hpp"
#include "gen/pigeonhole.hpp"
#include "solver/clause_arena.hpp"
#include "solver/sharing.hpp"
#include "solver/subproblem.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace gridsat {
namespace {

using cnf::Lit;

// ---------------------------------------------------------------------------
// Golden bytes. These fixtures pin the v2 wire format: if an encoder
// change alters any of them, bump cnf::kWireFormatVersion and regenerate
// (the fixtures are the serialized forms of the payloads built in each
// test). Old and new binaries must never silently exchange payloads —
// the frame's leading version byte is the gate.
// ---------------------------------------------------------------------------

const char* const kGoldenSubproblemFull =
    "020006000000020207020105037e5632887766554433221102010109"
    "02010203010301040303";

const char* const kGoldenSubproblemBaseRef =
    "020106000000020207020105037e5632887766554433221101030104"
    "0303";

const char* const kGoldenCheckpointDelta =
    "020303050401040001080102010501";

const char* const kGoldenRegisterFrame =
    "02020400000005000000";

const char* const kGoldenCheckpointAckFrame =
    "021006000000070000000309";

std::vector<std::uint8_t> from_hex(const char* hex) {
  const std::string s(hex);
  std::vector<std::uint8_t> bytes;
  for (std::size_t i = 0; i + 1 < s.size(); i += 2) {
    bytes.push_back(
        static_cast<std::uint8_t>(std::stoul(s.substr(i, 2), nullptr, 16)));
  }
  return bytes;
}

/// The fixture payload behind the subproblem goldens: canonical wire
/// order (clauses ascending by length per stream, literal codes sorted),
/// so decoding its bytes is the identity.
solver::Subproblem golden_subproblem() {
  solver::Subproblem sp;
  sp.num_vars = 6;
  sp.units = {{Lit(1, false), false}, {Lit(3, true), true}};
  sp.clauses = {{Lit(4, true)},
                {Lit(1, false), Lit(2, true)},
                {Lit(2, false), Lit(3, true), Lit(5, false)}};
  sp.num_problem_clauses = 2;
  sp.assumptions = {Lit(2, true)};
  sp.path = "~V2";
  sp.base_fingerprint = 0x1122334455667788ull;
  return sp;
}

TEST(GoldenBytesTest, SubproblemFullMatchesFixture) {
  const solver::Subproblem sp = golden_subproblem();
  EXPECT_EQ(sp.to_bytes(solver::WireMode::kFull),
            from_hex(kGoldenSubproblemFull));
  // A current decoder must read the checked-in bytes back exactly.
  const solver::Subproblem back =
      solver::Subproblem::from_bytes(from_hex(kGoldenSubproblemFull));
  EXPECT_EQ(back, sp);
}

TEST(GoldenBytesTest, SubproblemBaseRefMatchesFixture) {
  const solver::Subproblem sp = golden_subproblem();
  EXPECT_EQ(sp.to_bytes(solver::WireMode::kBaseRef),
            from_hex(kGoldenSubproblemBaseRef));
  solver::Subproblem back =
      solver::Subproblem::from_bytes(from_hex(kGoldenSubproblemBaseRef));
  EXPECT_TRUE(back.needs_base);
  EXPECT_EQ(back.num_problem_clauses, 0u);
  EXPECT_EQ(back.base_fingerprint, sp.base_fingerprint);
  // Splicing the problem block back in restores the full payload.
  const std::vector<cnf::Clause> base(sp.clauses.begin(),
                                      sp.clauses.begin() + 2);
  back.rehydrate(base);
  EXPECT_EQ(back, sp);
}

TEST(GoldenBytesTest, CheckpointDeltaMatchesFixture) {
  core::Checkpoint cp;
  cp.heavy = true;
  cp.delta = true;
  cp.incarnation = 3;
  cp.epoch = 5;
  cp.base_epoch = 4;
  cp.units = {{Lit(2, false), false}};
  cp.assumptions = {Lit(4, false)};
  cp.learned = {{Lit(2, true), Lit(3, false)}};
  EXPECT_EQ(cp.to_bytes(), from_hex(kGoldenCheckpointDelta));
  EXPECT_EQ(core::Checkpoint::from_bytes(from_hex(kGoldenCheckpointDelta)),
            cp);
}

TEST(GoldenBytesTest, ProtocolFramesMatchFixturesAndGateOnVersion) {
  using core::protocol::Message;
  const auto reg = core::protocol::encode(Message{core::protocol::Register{5}});
  EXPECT_EQ(reg, from_hex(kGoldenRegisterFrame));
  const auto ack = core::protocol::encode(
      Message{core::protocol::CheckpointAck{7, 3, 9}});
  EXPECT_EQ(ack, from_hex(kGoldenCheckpointAckFrame));

  // Every frame leads with the format version; a binary speaking another
  // version must reject the frame rather than misparse it.
  ASSERT_FALSE(reg.empty());
  EXPECT_EQ(reg[0], cnf::kWireFormatVersion);
  auto wrong_version = reg;
  wrong_version[0] = static_cast<std::uint8_t>(cnf::kWireFormatVersion + 1);
  EXPECT_FALSE(core::protocol::decode(wrong_version).has_value());
}

// ---------------------------------------------------------------------------
// Property: wire_size() is exact — it runs the real encoder against a
// counting writer, so it must equal serialize().size() for arbitrary
// payloads under every mode.
// ---------------------------------------------------------------------------

solver::Subproblem random_subproblem(util::Xoshiro256& rng) {
  solver::Subproblem sp;
  sp.num_vars = static_cast<cnf::Var>(10 + rng.below(50));
  const auto random_lit = [&] {
    return Lit(static_cast<cnf::Var>(1 + rng.below(sp.num_vars)),
               rng.below(2) == 0);
  };
  const std::size_t num_units = rng.below(12);
  for (std::size_t i = 0; i < num_units; ++i) {
    sp.units.push_back({random_lit(), rng.below(3) == 0});
  }
  const std::size_t num_clauses = rng.below(40);
  for (std::size_t i = 0; i < num_clauses; ++i) {
    cnf::Clause clause;
    const std::size_t len = 1 + rng.below(7);
    for (std::size_t j = 0; j < len; ++j) clause.push_back(random_lit());
    sp.clauses.push_back(std::move(clause));
  }
  sp.num_problem_clauses = sp.clauses.empty() ? 0 : rng.below(num_clauses + 1);
  const std::size_t num_assumptions = rng.below(6);
  for (std::size_t i = 0; i < num_assumptions; ++i) {
    sp.assumptions.push_back(random_lit());
  }
  sp.path = std::string(rng.below(20), 'p');
  sp.base_fingerprint = rng.next();
  return sp;
}

TEST(WirePropertyTest, SubproblemWireSizeEqualsSerializedSize) {
  util::Xoshiro256 rng(2024);
  for (int i = 0; i < 200; ++i) {
    const solver::Subproblem sp = random_subproblem(rng);
    for (const auto mode :
         {solver::WireMode::kFull, solver::WireMode::kBaseRef}) {
      EXPECT_EQ(sp.wire_size(mode), sp.to_bytes(mode).size())
          << "mode " << static_cast<int>(mode) << " iteration " << i;
    }
    // Decoding canonicalizes; re-encoding the canonical form is a
    // fixpoint with the same exact-size property.
    const solver::Subproblem back =
        solver::Subproblem::from_bytes(sp.to_bytes(solver::WireMode::kFull));
    EXPECT_EQ(back.wire_size(), back.to_bytes().size());
    EXPECT_EQ(solver::Subproblem::from_bytes(back.to_bytes()), back);
  }
}

TEST(WirePropertyTest, CheckpointWireSizeEqualsSerializedSize) {
  util::Xoshiro256 rng(4048);
  for (int i = 0; i < 200; ++i) {
    core::Checkpoint cp;
    cp.heavy = rng.below(2) == 0;
    cp.delta = cp.heavy && rng.below(2) == 0;
    cp.incarnation = rng.below(1000);
    cp.epoch = 1 + rng.below(100);
    cp.base_epoch = cp.delta ? rng.below(cp.epoch) : 0;
    const std::size_t num_units = rng.below(10);
    for (std::size_t u = 0; u < num_units; ++u) {
      cp.units.push_back({Lit(static_cast<cnf::Var>(1 + rng.below(30)),
                              rng.below(2) == 0),
                          rng.below(4) == 0});
    }
    const std::size_t num_learned = cp.heavy ? rng.below(20) : 0;
    for (std::size_t c = 0; c < num_learned; ++c) {
      cnf::Clause clause;
      const std::size_t len = 1 + rng.below(5);
      for (std::size_t j = 0; j < len; ++j) {
        clause.push_back(
            Lit(static_cast<cnf::Var>(1 + rng.below(30)), rng.below(2) == 0));
      }
      cp.learned.push_back(std::move(clause));
    }
    EXPECT_EQ(cp.wire_size(), cp.to_bytes().size()) << "iteration " << i;
  }
}

// ---------------------------------------------------------------------------
// Arena fast path: encoding straight out of ClauseArena spans must be
// byte-identical to materializing the clause vectors first.
// ---------------------------------------------------------------------------

TEST(WireArenaTest, SerializeFromArenaIsByteIdentical) {
  util::Xoshiro256 rng(77);
  for (int round = 0; round < 20; ++round) {
    solver::Subproblem sp = random_subproblem(rng);
    solver::ClauseArena arena;
    std::vector<solver::ClauseRef> problem_refs;
    std::vector<solver::ClauseRef> learned_refs;
    for (std::size_t i = 0; i < sp.clauses.size(); ++i) {
      const bool learned = i >= sp.num_problem_clauses;
      const solver::ClauseRef ref = arena.alloc(sp.clauses[i], learned);
      (learned ? learned_refs : problem_refs).push_back(ref);
    }
    for (const auto mode :
         {solver::WireMode::kFull, solver::WireMode::kBaseRef}) {
      util::ByteWriter out;
      solver::Subproblem::serialize_from_arena(
          out, sp.num_vars, sp.units, sp.assumptions, sp.path,
          sp.base_fingerprint, mode, arena, problem_refs, learned_refs);
      EXPECT_EQ(out.take(), sp.to_bytes(mode)) << "round " << round;
    }
  }
}

// ---------------------------------------------------------------------------
// Incremental checkpoint chains: restore replays base + deltas.
// ---------------------------------------------------------------------------

TEST(CheckpointChainTest, RestoreChainReplaysBaseAndDeltas) {
  cnf::CnfFormula f(5);
  f.add_dimacs_clause({1, 2, 3});
  f.add_dimacs_clause({-1, 4});

  core::Checkpoint full;
  full.heavy = true;
  full.incarnation = 9;
  full.epoch = 1;
  full.units = {{Lit(1, false), false}};
  full.assumptions = {Lit(2, false)};
  full.learned = {{Lit(2, false), Lit(4, false)}};

  core::Checkpoint delta;
  delta.heavy = true;
  delta.delta = true;
  delta.incarnation = 9;
  delta.epoch = 2;
  delta.base_epoch = 1;
  delta.units = {{Lit(1, false), false}, {Lit(4, false), true}};
  delta.assumptions = {Lit(2, false)};
  delta.learned = {{Lit(3, false), Lit(5, true)}};

  const std::vector<core::Checkpoint> chain = {full, delta};
  const solver::Subproblem sp = core::restore_chain(chain, f);
  // Units and assumptions come from the newest entry; the clause set is
  // the original formula plus every chain entry's learned clauses.
  EXPECT_EQ(sp.units, delta.units);
  EXPECT_EQ(sp.assumptions, delta.assumptions);
  EXPECT_EQ(sp.num_problem_clauses, f.num_clauses());
  ASSERT_EQ(sp.clauses.size(), f.num_clauses() + 2);
  EXPECT_EQ(sp.clauses[f.num_clauses()], full.learned[0]);
  EXPECT_EQ(sp.clauses[f.num_clauses() + 1], delta.learned[0]);
}

TEST(CheckpointChainTest, SingleFullChainMatchesDirectRestore) {
  cnf::CnfFormula f(3);
  f.add_dimacs_clause({1, -2});
  core::Checkpoint cp;
  cp.heavy = true;
  cp.units = {{Lit(2, true), false}};
  cp.learned = {{Lit(1, false), Lit(3, true)}};
  const std::vector<core::Checkpoint> chain = {cp};
  EXPECT_EQ(core::restore_chain(chain, f), cp.restore(f));
}

// ---------------------------------------------------------------------------
// Campaign integration: residency-driven base-ref ships, the
// renegotiate-on-mismatch fallback, and delta-chain recovery.
// ---------------------------------------------------------------------------

constexpr std::size_t kMiB = 1024 * 1024;

std::vector<sim::HostSpec> wire_testbed() {
  std::vector<sim::HostSpec> hosts;
  for (int i = 0; i < 4; ++i) {
    sim::HostSpec spec;
    spec.name = "w" + std::to_string(i);
    spec.site = i < 2 ? "east" : "west";
    spec.speed = 3000.0 + 500.0 * i;
    spec.memory_bytes = 32 * kMiB;
    spec.seed = 300 + i;
    hosts.push_back(spec);
  }
  return hosts;
}

core::GridSatConfig wire_config() {
  core::GridSatConfig config;
  config.split_timeout_s = 2.0;  // force early splitting
  config.overall_timeout_s = 50000.0;
  config.client_quantum_s = 0.5;
  config.min_client_memory = 1 * kMiB;
  return config;
}

TEST(CampaignWireTest, BaseRefCachingSavesBytesWithUnchangedVerdict) {
  const cnf::CnfFormula f = gen::pigeonhole_unsat(8);
  core::Campaign campaign(f, "east", wire_testbed(), wire_config());
  const core::GridSatResult result = campaign.run();
  EXPECT_EQ(result.status, core::CampaignStatus::kUnsat);
  // With splits bouncing between four hosts, repeat transfers hit warm
  // receivers and ship fingerprints instead of the problem block.
  EXPECT_GE(result.base_ref_transfers, 1u);
  EXPECT_GT(result.base_ref_bytes_saved, 0u);
  EXPECT_EQ(result.base_renegotiations, 0u);
}

TEST(CampaignWireTest, CachingOffNeverShipsBaseRefs) {
  const cnf::CnfFormula f = gen::pigeonhole_unsat(8);
  core::GridSatConfig config = wire_config();
  config.base_ref_caching = false;
  core::Campaign campaign(f, "east", wire_testbed(), config);
  const core::GridSatResult result = campaign.run();
  EXPECT_EQ(result.status, core::CampaignStatus::kUnsat);
  EXPECT_EQ(result.base_ref_transfers, 0u);
  EXPECT_EQ(result.base_ref_bytes_saved, 0u);
}

TEST(CampaignWireTest, StaleResidencyRenegotiatesToFullShip) {
  const cnf::CnfFormula f = gen::pigeonhole_unsat(6);
  core::Campaign campaign(f, "east", wire_testbed(), wire_config());
  // Lie to the master: every host supposedly holds the base already. The
  // first ship goes out as a base-ref, hits a client with an empty
  // cache, and must degrade to a full ship via BASE_MISS — a stale cache
  // costs a round trip, never a wrong formula.
  for (std::size_t i = 0; i < campaign.num_hosts(); ++i) {
    campaign.debug_mark_base_resident(i);
  }
  const core::GridSatResult result = campaign.run();
  EXPECT_EQ(result.status, core::CampaignStatus::kUnsat);
  EXPECT_GE(result.base_renegotiations, 1u);
}

TEST(CampaignWireTest, IncrementalCheckpointRecoveryRestoresChain) {
  const cnf::CnfFormula f = gen::pigeonhole_unsat(8);
  core::GridSatConfig config = wire_config();
  config.checkpoint = core::CheckpointMode::kHeavy;
  config.checkpoint_interval_s = 1.0;
  config.recover_from_checkpoints = true;
  core::Campaign campaign(f, "east", wire_testbed(), config);
  campaign.schedule_client_failure(0, 10.0);
  const core::GridSatResult result = campaign.run();
  EXPECT_EQ(result.status, core::CampaignStatus::kUnsat);
  EXPECT_GE(result.checkpoint_recoveries, 1u);
  // The chain actually went incremental: full snapshots are rare, deltas
  // carry the cadence.
  EXPECT_GE(result.checkpoints_full, 1u);
  EXPECT_GE(result.checkpoints_delta, 1u);
  EXPECT_GT(result.checkpoints_delta, result.checkpoints_full);
}

TEST(SubproblemTrimTest, KeepsProblemBlockAndShortestLearned) {
  solver::Subproblem sp;
  sp.num_vars = 10;
  sp.clauses = {{Lit(1, false), Lit(2, false)},
                {Lit(3, false), Lit(4, false), Lit(5, false)},
                {Lit(1, false), Lit(2, true), Lit(3, true), Lit(4, true),
                 Lit(5, true)},
                {Lit(6, false)},
                {Lit(7, false), Lit(8, true)}};
  sp.num_problem_clauses = 2;
  const std::size_t full = sp.wire_size();
  // Cost model: 1 byte bookkeeping + 1 varint per literal — budget 6
  // fits the unit (2) and the binary (3) but not the 5-literal clause.
  const std::size_t dropped = sp.trim_learned(6);
  EXPECT_EQ(dropped, 1u);
  ASSERT_EQ(sp.clauses.size(), 4u);
  // Problem block untouched, in order; kept learned sorted shortest-first.
  EXPECT_EQ(sp.clauses[0].size(), 2u);
  EXPECT_EQ(sp.clauses[1].size(), 3u);
  EXPECT_EQ(sp.clauses[2], (cnf::Clause{Lit(6, false)}));
  EXPECT_EQ(sp.clauses[3], (cnf::Clause{Lit(7, false), Lit(8, true)}));
  EXPECT_LT(sp.wire_size(), full);
  // A roomy budget drops nothing further.
  EXPECT_EQ(sp.trim_learned(1u << 20), 0u);
}

TEST(CampaignWireTest, SplitBudgetBoundsShipsWithUnchangedVerdict) {
  const cnf::CnfFormula f = gen::pigeonhole_unsat(8);
  core::GridSatConfig unlimited = wire_config();
  unlimited.split_learned_budget_bytes = 0;
  core::Campaign a(f, "east", wire_testbed(), unlimited);
  const core::GridSatResult ra = a.run();

  core::GridSatConfig bounded = wire_config();
  bounded.split_learned_budget_bytes = 512;
  core::Campaign b(f, "east", wire_testbed(), bounded);
  const core::GridSatResult rb = b.run();

  EXPECT_EQ(ra.status, core::CampaignStatus::kUnsat);
  EXPECT_EQ(rb.status, core::CampaignStatus::kUnsat);
  EXPECT_EQ(ra.ship_learned_trimmed, 0u);
  EXPECT_GT(rb.ship_learned_trimmed, 0u);
  EXPECT_GT(rb.ship_trim_bytes_saved, 0u);
  // The v1-equivalent cost of a warm transfer (untrimmed + base block) is
  // never smaller than what the overhaul actually shipped plus the base
  // savings alone.
  EXPECT_GE(rb.warm_ship_bytes_v1,
            rb.base_ref_payload_bytes + rb.base_ref_bytes_saved);
}

TEST(CampaignWireTest, IncrementalOffShipsOnlyFullCheckpoints) {
  const cnf::CnfFormula f = gen::pigeonhole_unsat(8);
  core::GridSatConfig config = wire_config();
  config.checkpoint = core::CheckpointMode::kHeavy;
  config.checkpoint_interval_s = 1.0;
  config.recover_from_checkpoints = true;
  config.incremental_checkpoints = false;
  core::Campaign campaign(f, "east", wire_testbed(), config);
  campaign.schedule_client_failure(0, 10.0);
  const core::GridSatResult result = campaign.run();
  EXPECT_EQ(result.status, core::CampaignStatus::kUnsat);
  EXPECT_EQ(result.checkpoints_delta, 0u);
  EXPECT_GE(result.checkpoints_full, 1u);
}

}  // namespace
}  // namespace gridsat
