// Logger tests: level filtering, sink capture, virtual-clock prefixes,
// and write() serialization under concurrent loggers.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "util/log.hpp"

namespace gridsat::util {
namespace {

class LogTest : public testing::Test {
 protected:
  void SetUp() override {
    Log::set_sink([this](const std::string& line) { lines_.push_back(line); });
    Log::set_level(LogLevel::kTrace);
  }
  void TearDown() override {
    Log::clear_sink();
    Log::clear_clock();
    Log::set_level(LogLevel::kWarn);
  }
  std::vector<std::string> lines_;
};

TEST_F(LogTest, WritesThroughSink) {
  LOG_INFO("test") << "hello " << 42;
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_NE(lines_[0].find("INFO"), std::string::npos);
  EXPECT_NE(lines_[0].find("[test]"), std::string::npos);
  EXPECT_NE(lines_[0].find("hello 42"), std::string::npos);
}

TEST_F(LogTest, LevelFilters) {
  Log::set_level(LogLevel::kError);
  LOG_DEBUG("test") << "invisible";
  LOG_WARN("test") << "also invisible";
  LOG_ERROR("test") << "visible";
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_NE(lines_[0].find("visible"), std::string::npos);
}

TEST_F(LogTest, OffSilencesEverything) {
  Log::set_level(LogLevel::kOff);
  LOG_ERROR("test") << "nope";
  EXPECT_TRUE(lines_.empty());
}

TEST_F(LogTest, ClockPrefix) {
  Log::set_clock([] { return std::string("123.4s"); });
  LOG_INFO("sim") << "tick";
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_EQ(lines_[0].rfind("[123.4s]", 0), 0u);
}

TEST_F(LogTest, StreamingOperatorsCompose) {
  LOG_TRACE("x") << "a" << 1 << 'b' << 2.5;
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_NE(lines_[0].find("a1b2.5"), std::string::npos);
}

TEST_F(LogTest, ConcurrentWritersNeverInterleave) {
  // The sink (this fixture's vector push_back) runs under Log's mutex,
  // so N threads x M lines must land as exactly N*M intact lines.
  constexpr int kThreads = 4;
  constexpr int kLines = 200;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) {
        LOG_INFO("worker") << "thread=" << t << " line=" << i;
      }
    });
  }
  for (auto& w : writers) w.join();
  ASSERT_EQ(lines_.size(), static_cast<std::size_t>(kThreads * kLines));
  for (const std::string& line : lines_) {
    EXPECT_NE(line.find("thread="), std::string::npos) << line;
    EXPECT_NE(line.find(" line="), std::string::npos) << line;
  }
}

}  // namespace
}  // namespace gridsat::util
