// Unit tests for the util module: RNG determinism and distribution
// sanity, serialization round trips, statistics, strings, flags.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace gridsat::util {
namespace {

TEST(RngTest, DeterministicAcrossInstances) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(RngTest, BelowIsRoughlyUniform) {
  Xoshiro256 rng(11);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.below(kBuckets)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(RngTest, RangeInclusive) {
  Xoshiro256 rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformInUnitInterval) {
  Xoshiro256 rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Xoshiro256 rng(13);
  double sum = 0.0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) sum += rng.exponential(7.0);
  EXPECT_NEAR(sum / kDraws, 7.0, 0.25);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Xoshiro256 parent(99);
  Xoshiro256 child = parent.fork();
  // The child must not replay the parent's stream.
  Xoshiro256 parent2(99);
  (void)parent2.fork();
  EXPECT_NE(child.next(), parent.next());
}

TEST(RngTest, ShuffleIsPermutationAndDeterministic) {
  std::vector<int> v1{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> v2 = v1;
  Xoshiro256 r1(4);
  Xoshiro256 r2(4);
  shuffle(v1, r1);
  shuffle(v2, r2);
  EXPECT_EQ(v1, v2);
  std::vector<int> sorted = v1;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(BytesTest, FixedWidthRoundTrip) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.f64(3.14159);
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.exhausted());
}

TEST(BytesTest, VarintRoundTrip) {
  const std::vector<std::uint64_t> values{
      0, 1, 127, 128, 129, 16383, 16384, 1u << 20, 0xffffffffULL,
      0xffffffffffffffffULL};
  ByteWriter w;
  for (const auto v : values) w.var_u64(v);
  ByteReader r(w.data());
  for (const auto v : values) EXPECT_EQ(r.var_u64(), v);
  EXPECT_TRUE(r.exhausted());
}

TEST(BytesTest, SignedVarintRoundTrip) {
  const std::vector<std::int64_t> values{0,  1,  -1, 63, -64, 64,
                                         -65, 1000000, -1000000,
                                         INT64_MAX, INT64_MIN};
  ByteWriter w;
  for (const auto v : values) w.var_i64(v);
  ByteReader r(w.data());
  for (const auto v : values) EXPECT_EQ(r.var_i64(), v);
}

TEST(BytesTest, SmallVarintsAreCompact) {
  ByteWriter w;
  w.var_u64(5);
  EXPECT_EQ(w.size(), 1u);
  w.var_u64(300);
  EXPECT_EQ(w.size(), 3u);
}

TEST(BytesTest, StringRoundTrip) {
  ByteWriter w;
  w.str("");
  w.str("hello");
  w.str(std::string(1000, 'x'));
  ByteReader r(w.data());
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), std::string(1000, 'x'));
}

TEST(BytesTest, UnderrunThrows) {
  ByteWriter w;
  w.u8(1);
  ByteReader r(w.data());
  r.u8();
  EXPECT_THROW(r.u32(), DecodeError);
}

TEST(BytesTest, TruncatedVarintThrows) {
  const std::vector<std::uint8_t> bad{0x80, 0x80};
  ByteReader r(bad);
  EXPECT_THROW(r.var_u64(), DecodeError);
}

TEST(BytesTest, OverlongVarintThrows) {
  // 11 continuation bytes can encode more than 64 bits.
  const std::vector<std::uint8_t> bad(11, 0xff);
  ByteReader r(bad);
  EXPECT_THROW(r.var_u64(), DecodeError);
}

TEST(StatsTest, AccumulatorBasics) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.stddev(), 2.138, 0.001);
  EXPECT_EQ(acc.min(), 2.0);
  EXPECT_EQ(acc.max(), 9.0);
}

TEST(StatsTest, SlidingWindowEvicts) {
  SlidingWindow w(3);
  w.add(1);
  w.add(2);
  w.add(3);
  EXPECT_DOUBLE_EQ(w.mean(), 2.0);
  w.add(10);
  EXPECT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_DOUBLE_EQ(w.last(), 10.0);
  EXPECT_DOUBLE_EQ(w.median(), 3.0);
}

TEST(StatsTest, HistogramBuckets) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  h.add(-1.0);
  h.add(100.0);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(h.bucket(i), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 12u);
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("\t x \n"), "x");
}

TEST(StringsTest, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, SplitWs) {
  EXPECT_EQ(split_ws("  a  b\tc \n"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(StringsTest, ParseNumbers) {
  long long i = 0;
  EXPECT_TRUE(parse_i64("-123", i));
  EXPECT_EQ(i, -123);
  EXPECT_FALSE(parse_i64("12x", i));
  EXPECT_FALSE(parse_i64("", i));
  double d = 0;
  EXPECT_TRUE(parse_f64("3.5e2", d));
  EXPECT_DOUBLE_EQ(d, 350.0);
  EXPECT_FALSE(parse_f64("abc", d));
}

TEST(StringsTest, FormatHelpers) {
  EXPECT_EQ(format_duration(30.0), "30.0 s");
  EXPECT_EQ(format_duration(600.0), "10.0 min");
  EXPECT_EQ(format_duration(7200.0), "2.0 h");
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.0 KB");
  EXPECT_EQ(format_bytes(3.5 * 1024 * 1024), "3.5 MB");
  EXPECT_EQ(pad_right("ab", 5), "ab   ");
  EXPECT_EQ(pad_left("ab", 5), "   ab");
}

TEST(FlagsTest, ParseAllKinds) {
  Flags flags;
  flags.define_i64("count", 1, "a count");
  flags.define_f64("ratio", 0.5, "a ratio");
  flags.define_str("name", "x", "a name");
  flags.define_bool("verbose", false, "verbosity");
  const char* argv[] = {"prog", "--count=7", "--ratio", "2.5",
                        "--name=abc", "--verbose", "positional"};
  ASSERT_TRUE(flags.parse(7, argv));
  EXPECT_EQ(flags.i64("count"), 7);
  EXPECT_DOUBLE_EQ(flags.f64("ratio"), 2.5);
  EXPECT_EQ(flags.str("name"), "abc");
  EXPECT_TRUE(flags.boolean("verbose"));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
}

TEST(FlagsTest, UnknownFlagFails) {
  Flags flags;
  flags.define_i64("count", 1, "a count");
  const char* argv[] = {"prog", "--nope=3"};
  EXPECT_FALSE(flags.parse(2, argv));
}

TEST(FlagsTest, BadValueFails) {
  Flags flags;
  flags.define_i64("count", 1, "a count");
  const char* argv[] = {"prog", "--count=abc"};
  EXPECT_FALSE(flags.parse(2, argv));
}

TEST(FlagsTest, DefaultsSurvive) {
  Flags flags;
  flags.define_i64("count", 42, "a count");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.parse(1, argv));
  EXPECT_EQ(flags.i64("count"), 42);
}

}  // namespace
}  // namespace gridsat::util
